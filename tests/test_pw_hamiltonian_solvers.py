"""Tests for the Hamiltonian, the eigensolvers, energies and the FSM."""

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.pw.basis import PlaneWaveBasis
from repro.pw.density import compute_density, integrated_charge, occupations_for_insulator
from repro.pw.eigensolver import all_band_cg, band_by_band_cg, exact_diagonalization
from repro.pw.energy import (
    electrostatic_energy,
    potential_distance,
    screening_potential,
    total_energy_from_orbitals,
)
from repro.pw.fsm import folded_spectrum
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.pseudopotential import (
    SpeciesPseudopotential,
    default_pseudopotentials,
)


@pytest.fixture(scope="module")
def small_problem():
    """A 2-atom toy crystal Hamiltonian with a modest basis (module-scoped)."""
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.5)
    pps = default_pseudopotentials()
    grid = FFTGrid.for_structure(structure.cell, points_per_bohr=1.8)
    basis = PlaneWaveBasis(grid, ecut=2.5)
    h = Hamiltonian.from_structure(structure, basis, pps)
    rho_ion = pps.ionic_density(structure, grid)
    rho0 = np.clip(rho_ion, 0, None)
    rho0 *= structure.total_valence_electrons() / (np.sum(rho0) * grid.dvol)
    h.set_effective_potential(screening_potential(rho0, grid, rho_ion))
    return structure, pps, grid, basis, h, rho_ion


# --- pseudopotentials ----------------------------------------------------------

def test_ionic_density_integrates_to_total_charge(small_problem):
    structure, pps, grid, *_ , rho_ion = small_problem
    total = integrated_charge(rho_ion, grid.dvol)
    assert total == pytest.approx(pps.total_ionic_charge(structure), rel=1e-6)


def test_local_potential_is_real_and_attractive_near_anion(small_problem):
    structure, pps, grid, *_ = small_problem
    v = pps.local_potential(structure, grid)
    assert v.shape == grid.shape
    assert np.isrealobj(v)
    # The short-range part must average to the sum of form factors / volume.
    assert np.abs(np.mean(v)) < 10.0


def test_pseudopotential_set_lookup_errors():
    pps = default_pseudopotentials()
    with pytest.raises(KeyError):
        pps["NotASpecies"]
    with pytest.raises(ValueError):
        SpeciesPseudopotential("X", v0=1.0, sigma=-1.0)
    with pytest.raises(ValueError):
        SpeciesPseudopotential("X", v0=1.0, sigma=1.0, core_width=-0.5)
    assert "Zn" in pps and "Te" in pps


def test_with_override_replaces_parameters():
    pps = default_pseudopotentials()
    new = pps.with_override(
        {"O": SpeciesPseudopotential("O", v0=9.9, sigma=0.8, zion=6.0)}
    )
    assert new["O"].v0 == pytest.approx(9.9)
    assert pps["O"].v0 != pytest.approx(9.9)


# --- Hamiltonian -----------------------------------------------------------------

def test_hamiltonian_is_hermitian(small_problem):
    *_, basis, h, _ = small_problem[2:], small_problem[3], small_problem[4], small_problem[5]
    basis = small_problem[3]
    h = small_problem[4]
    rng = np.random.default_rng(0)
    a = basis.random_coefficients(1, rng)[0]
    b = basis.random_coefficients(1, rng)[0]
    lhs = np.vdot(a, h.apply(b))
    rhs = np.vdot(h.apply(a), b)
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_dense_matrix_matches_apply(small_problem):
    basis, h = small_problem[3], small_problem[4]
    mat = h.dense_matrix()
    rng = np.random.default_rng(1)
    c = basis.random_coefficients(1, rng)[0]
    assert np.allclose(mat @ c, h.apply(c), atol=1e-10)
    assert np.allclose(mat, mat.conj().T, atol=1e-12)


def test_expectation_values_are_real_and_above_ground_state(small_problem):
    basis, h = small_problem[3], small_problem[4]
    exact = exact_diagonalization(h, 4)
    rng = np.random.default_rng(2)
    c = basis.random_coefficients(3, rng)
    expect = h.expectation(c)
    assert np.all(expect >= exact.eigenvalues[0] - 1e-10)


def test_preconditioner_positive(small_problem):
    h = small_problem[4]
    p = h.preconditioner()
    assert np.all(p > 0)
    assert np.all(p <= 1.0 + 1e-12)


# --- eigensolvers -----------------------------------------------------------------

def test_all_band_cg_matches_exact(small_problem):
    h = small_problem[4]
    nb = 8
    exact = exact_diagonalization(h, nb)
    iterative = all_band_cg(h, nb, max_iterations=150, tolerance=1e-8)
    assert iterative.converged
    assert np.allclose(iterative.eigenvalues, exact.eigenvalues, atol=1e-6)
    overlap = iterative.coefficients.conj() @ iterative.coefficients.T
    assert np.allclose(overlap, np.eye(nb), atol=1e-8)


def test_band_by_band_cg_reasonable_accuracy(small_problem):
    h = small_problem[4]
    nb = 4
    exact = exact_diagonalization(h, nb)
    bb = band_by_band_cg(h, nb, max_iterations=40, tolerance=1e-5)
    assert np.allclose(bb.eigenvalues, exact.eigenvalues, atol=5e-3)


def test_all_band_warm_start_converges_faster(small_problem):
    h = small_problem[4]
    nb = 6
    first = all_band_cg(h, nb, max_iterations=150, tolerance=1e-7)
    warm = all_band_cg(h, nb, initial=first.coefficients, max_iterations=150, tolerance=1e-7)
    assert warm.iterations <= max(2, first.iterations // 3)


def test_eigensolver_argument_validation(small_problem):
    h = small_problem[4]
    with pytest.raises(ValueError):
        all_band_cg(h, 0)
    with pytest.raises(ValueError):
        exact_diagonalization(h, 10**6)


def test_all_band_history_is_recorded(small_problem):
    h = small_problem[4]
    res = all_band_cg(h, 4, max_iterations=30, tolerance=1e-12)
    assert len(res.history) == res.iterations
    # Residual histories should broadly decrease (allow small plateaus).
    assert res.history[-1] < res.history[0]


# --- density / energy ---------------------------------------------------------------

def test_occupations_for_insulator():
    occ = occupations_for_insulator(8, 6)
    assert np.allclose(occ, [2, 2, 2, 2, 0, 0])
    occ_odd = occupations_for_insulator(7, 5)
    assert occ_odd[3] == 1.0
    with pytest.raises(ValueError):
        occupations_for_insulator(10, 2)


def test_density_integrates_to_electron_count(small_problem):
    structure, pps, grid, basis, h, rho_ion = small_problem
    nelec = structure.total_valence_electrons()
    nbands = nelec // 2 + 2
    res = all_band_cg(h, nbands, max_iterations=100, tolerance=1e-6)
    occ = occupations_for_insulator(nelec, nbands)
    rho = compute_density(basis, res.coefficients, occ)
    assert np.all(rho >= -1e-12)
    assert integrated_charge(rho, grid.dvol) == pytest.approx(nelec, rel=1e-8)


def test_band_energy_identity_at_fixed_potential(small_problem):
    """sum occ eps_i == sum occ <T+V_sr+V_NL> + integral rho_out * V_scr dr.

    This is the identity connecting the two total-energy routes; it must
    hold exactly (to solver tolerance) for *any* fixed screening potential,
    without requiring self-consistency.
    """
    structure, pps, grid, basis, h, rho_ion = small_problem
    nelec = structure.total_valence_electrons()
    nbands = nelec // 2 + 2
    res = all_band_cg(h, nbands, max_iterations=150, tolerance=1e-7)
    occ = occupations_for_insulator(nelec, nbands)
    rho_out = compute_density(basis, res.coefficients, occ)
    self_e = pps.ionic_self_energy(structure)
    breakdown = total_energy_from_orbitals(h, res.coefficients, occ, rho_out, rho_ion, self_e)
    band_sum = float(np.sum(occ * res.eigenvalues))
    double_count = float(np.sum(rho_out * h.v_screening) * grid.dvol)
    assert band_sum == pytest.approx(breakdown.kinetic_and_ionic + double_count, rel=1e-5)
    # The orbital-route breakdown must be finite and include the self-energy.
    assert np.isfinite(breakdown.total)
    assert breakdown.ionic_self_energy == pytest.approx(self_e)


def test_potential_distance_metric(small_problem):
    grid = small_problem[2]
    a = np.zeros(grid.shape)
    b = np.ones(grid.shape)
    assert potential_distance(a, b, grid) == pytest.approx(grid.volume)
    assert potential_distance(a, a, grid) == 0.0


def test_electrostatic_energy_of_neutral_system_is_finite(small_problem):
    structure, pps, grid, basis, h, rho_ion = small_problem
    rho = np.clip(rho_ion, 0, None)
    rho *= structure.total_valence_electrons() / (np.sum(rho) * grid.dvol)
    e = electrostatic_energy(rho, grid, rho_ion)
    assert np.isfinite(e)
    assert abs(e) < 10.0


# --- folded spectrum method -----------------------------------------------------------

def test_folded_spectrum_finds_interior_states(small_problem):
    h = small_problem[4]
    exact = exact_diagonalization(h, 10)
    # Fold around the energy of the 5th state: FSM must return states whose
    # energies are the exact eigenvalues closest to the reference.
    ref = float(exact.eigenvalues[4]) + 1e-3
    fsm = folded_spectrum(h, ref, nstates=3, max_iterations=250, tolerance=1e-9)
    # Each FSM energy must match some exact eigenvalue.
    for e in fsm.eigenvalues:
        assert np.min(np.abs(exact.eigenvalues - e)) < 1e-4
    # And they must be (among) the nearest ones to the reference.
    dist_found = np.sort(np.abs(fsm.eigenvalues - ref))
    dist_exact = np.sort(np.abs(exact.eigenvalues - ref))[:3]
    assert dist_found[0] == pytest.approx(dist_exact[0], abs=1e-4)
    assert np.all(fsm.residual_norms < 1e-3)
