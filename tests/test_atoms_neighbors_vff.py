"""Tests for neighbour lists and the Keating valence force field."""

import numpy as np
import pytest

from repro.atoms.neighbors import (
    build_neighbor_list,
    tetrahedral_bond_cutoff,
)
from repro.atoms.vff import KeatingVFF, relax_structure
from repro.atoms.zincblende import zincblende_supercell, zincblende_unit_cell


def test_neighbor_list_zincblende_coordination():
    sc = zincblende_supercell((2, 2, 2), "Zn", "Te")
    cutoff = tetrahedral_bond_cutoff(sc)
    nl = build_neighbor_list(sc, cutoff)
    coord = nl.coordination_numbers(sc.natoms)
    # Every atom in zinc-blende is four-fold coordinated.
    assert np.all(coord == 4)
    # Total bonds = 4 * natoms / 2.
    assert nl.npairs == 2 * sc.natoms


def test_neighbor_list_brute_force_agrees_with_linked_cells():
    sc = zincblende_supercell((3, 3, 3), "Zn", "Te")
    cutoff = tetrahedral_bond_cutoff(sc)
    nl_fast = build_neighbor_list(sc, cutoff)
    # Force the brute-force path via the private helper on a subset check:
    from repro.atoms.neighbors import _brute_force_neighbors

    nl_slow = _brute_force_neighbors(sc, cutoff)
    pairs_fast = {tuple(sorted(p)) for p in nl_fast.pairs.tolist()}
    pairs_slow = {tuple(sorted(p)) for p in nl_slow.pairs.tolist()}
    assert pairs_fast == pairs_slow


def test_neighbor_list_vectors_and_distances_consistent():
    sc = zincblende_unit_cell("Zn", "Te")
    nl = build_neighbor_list(sc, tetrahedral_bond_cutoff(sc))
    assert np.allclose(np.linalg.norm(nl.vectors, axis=1), nl.distances)
    assert nl.neighbors_of(0)  # the first cation has neighbours


def test_neighbor_list_invalid_cutoff():
    sc = zincblende_unit_cell("Zn", "Te")
    with pytest.raises(ValueError):
        build_neighbor_list(sc, -1.0)


def test_vff_ideal_zincblende_is_stationary():
    sc = zincblende_supercell((1, 1, 1), "Zn", "Te")
    vff = KeatingVFF(sc)
    f = vff.forces()
    assert np.max(np.abs(f)) < 1e-8
    assert vff.nbonds == 2 * sc.natoms
    # Each atom contributes C(4,2) = 6 angle triples.
    assert vff.nangles == 6 * sc.natoms


def test_vff_forces_match_finite_differences():
    sc = zincblende_supercell((1, 1, 1), "Zn", "Te")
    rng = np.random.default_rng(3)
    pos = sc.positions + 0.05 * rng.standard_normal((sc.natoms, 3))
    vff = KeatingVFF(sc)
    analytic = vff.forces(pos)
    eps = 1e-5
    for atom, axis in [(0, 0), (3, 1), (5, 2)]:
        dp = pos.copy()
        dm = pos.copy()
        dp[atom, axis] += eps
        dm[atom, axis] -= eps
        numeric = -(vff.energy(dp) - vff.energy(dm)) / (2 * eps)
        assert analytic[atom, axis] == pytest.approx(numeric, rel=1e-4, abs=1e-8)


def test_vff_relaxation_never_increases_energy():
    sc = zincblende_supercell((1, 1, 1), "Zn", "Te")
    rng = np.random.default_rng(1)
    distorted = sc.displaced(0.2 * rng.standard_normal((sc.natoms, 3)))
    vff = KeatingVFF(distorted)
    e0 = vff.energy()
    relaxed, info = vff.relax(max_steps=100)
    assert info["final_energy"] <= e0 + 1e-12
    assert info["final_energy"] < 1e-3  # close to the ideal minimum
    assert relaxed.natoms == sc.natoms


def test_relax_structure_distorts_around_oxygen():
    # Substituting one Te by the smaller O should pull its Zn neighbours in.
    from repro.atoms.alloy import substitute_anions

    host = zincblende_supercell((2, 1, 1), "Zn", "Te")
    alloy = substitute_anions(host, "Te", "O", fraction=1.0 / host.species_counts()["Te"], rng=0)
    relaxed, info = relax_structure(alloy, max_steps=150)
    assert info["final_energy"] <= info["initial_energy"]
    o_idx = [i for i, s in enumerate(alloy.symbols) if s == "O"][0]
    cutoff = tetrahedral_bond_cutoff(host)
    nl = build_neighbor_list(relaxed, cutoff)
    o_bonds = [d for (i, j), d in zip(nl.pairs, nl.distances) if o_idx in (i, j)]
    te_bond = host.minimum_image_distance(0, 4)
    assert len(o_bonds) > 0
    assert np.mean(o_bonds) < te_bond  # Zn-O shorter than Zn-Te


def test_vff_invalid_parameters():
    sc = zincblende_unit_cell("Zn", "Te")
    with pytest.raises(ValueError):
        KeatingVFF(sc, alpha=-1.0)
