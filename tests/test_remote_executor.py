"""Tests for the socket-backed remote executor (ISSUE-7 tentpole).

Covers the wire protocol (framing, handshake, typed protocol errors),
the ``repro-worker`` server surface, and the driver-side
:class:`~repro.parallel.remote.RemoteExecutor` — bit-identical (``==``)
to the serial backend for all executor protocols (``run`` /
``run_pipeline`` / ``run_global`` / ``run_bands``), with install-once
dedup accounting and byte counters.

The second half drives the failure model with the deterministic fault
harness (:mod:`repro.parallel.faults`): dropped connections, killed
workers, delayed and timed-out replies, unreachable addresses, total
worker loss with and without a local fallback, and genuine kernel
errors.  The acceptance criterion from the ISSUE: every failure mode
ends in either a bit-identical result (after resubmission) or a loud
typed error — never a hang and never silent corruption.

The in-process workers (:func:`start_worker_thread`) speak the full TCP
protocol over loopback, so these tests exercise every byte of the wire
path while staying fast enough for tier-1.  The ``remote``-marked test
at the bottom uses real worker *subprocesses* (:class:`LocalWorkerPool`)
against the golden-regression systems; CI runs it in the dedicated
``remote-smoke`` job.
"""

import contextlib
import json
import os
import socket
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.fragment_task import (
    FragmentExecutor,
    FragmentTask,
    PipelineFragmentExecutor,
    clear_installed_potentials,
    fetch_potential,
    potential_fingerprint,
    run_fragment_pipeline_task,
    solve_fragment_task,
)
from repro.core.scf import LS3DFSCF
from repro.parallel.executor import SerialFragmentExecutor
from repro.parallel.faults import FaultPlan
from repro.parallel.remote import (
    PROTOCOL_VERSION,
    LocalWorkerPool,
    NoRemoteWorkersError,
    RemoteExecutor,
    RemoteExecutorConfig,
    RemoteProtocolError,
    RemoteTaskError,
    WorkerServer,
    recv_frame,
    send_frame,
    start_worker_thread,
)
from repro.pw.grid import FFTGrid


def _make_task(label="frag") -> FragmentTask:
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (10, 10, 10))
    return FragmentTask(
        label=label,
        cell=tuple(structure.cell),
        grid_shape=grid.shape,
        symbols=structure.symbols,
        positions=structure.positions,
        screening_potential=np.full(grid.shape, 0.02),
        ecut=2.0,
        n_empty=1,
        tolerance=1e-4,
        max_iterations=40,
    )


def _tiny_scf(executor=None, **kw) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        **kw,
    )


_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-6,  # never met in 3 iterations: fixed work
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


def _config(**kw) -> RemoteExecutorConfig:
    """Test defaults: fast retries, no heartbeat noise between batches."""
    base = dict(
        connect_timeout=2.0,
        request_timeout=60.0,
        heartbeat_interval=1e9,
        max_retries=1,
        backoff=0.01,
    )
    base.update(kw)
    return RemoteExecutorConfig(**base)


@contextlib.contextmanager
def _cluster(n=2, plans=None, fallback="serial", **cfg):
    """``n`` in-process loopback workers + a RemoteExecutor over them.

    ``plans`` maps worker index -> :class:`FaultPlan` for that worker.
    """
    plans = plans or {}
    servers = [start_worker_thread(fault_plan=plans.get(i)) for i in range(n)]
    executor = RemoteExecutor(
        [s.address for s in servers], config=_config(**cfg), fallback=fallback
    )
    try:
        yield executor, servers
    finally:
        executor.close()
        for server in servers:
            server.stop()


def _assert_results_equal(got, want):
    """Bit-identity of fragment solve results (the `==` criterion)."""
    assert [r.label for r in got] == [r.label for r in want]
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g.eigenvalues, w.eigenvalues)
        np.testing.assert_array_equal(g.density, w.density)
        assert g.quantum_energy == w.quantum_energy


# --- framing ----------------------------------------------------------------------

def test_frame_roundtrip_with_arrays():
    a, b = socket.socketpair()
    try:
        payload = {"op": "task", "x": np.arange(6.0).reshape(2, 3), "s": "hi"}
        sent = send_frame(a, payload)
        obj, received = recv_frame(b)
        assert sent == received > 12  # 12-byte header + pickle
        np.testing.assert_array_equal(obj["x"], payload["x"])
        assert obj["op"] == "task" and obj["s"] == "hi"
    finally:
        a.close()
        b.close()


def test_frame_rejects_bad_magic():
    a, b = socket.socketpair()
    try:
        a.sendall(b"XXXX" + (5).to_bytes(8, "big") + b"12345")
        with pytest.raises(RemoteProtocolError, match="magic"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_frame_size_limits_both_directions():
    a, b = socket.socketpair()
    try:
        with pytest.raises(RemoteProtocolError, match="exceeds"):
            send_frame(a, np.zeros(1000), max_bytes=100)
        send_frame(a, np.zeros(1000))
        with pytest.raises(RemoteProtocolError, match="exceeds"):
            recv_frame(b, max_bytes=100)
    finally:
        a.close()
        b.close()


def test_frame_connection_closed_mid_stream():
    a, b = socket.socketpair()
    a.close()
    try:
        with pytest.raises((ConnectionError, OSError)):
            recv_frame(b)
    finally:
        b.close()


# --- worker protocol surface ------------------------------------------------------

def _roundtrip(sock, obj):
    send_frame(sock, obj)
    reply, _ = recv_frame(sock)
    return reply


def test_worker_protocol_surface():
    with WorkerServer() as server:
        sock = socket.create_connection(server.address, timeout=5)
        try:
            hello = _roundtrip(sock, {"op": "hello", "version": PROTOCOL_VERSION})
            assert hello["ok"]
            assert hello["version"] == PROTOCOL_VERSION
            assert hello["pid"] == os.getpid()  # in-process worker
            # A version-mismatched driver is refused loudly, not garbled.
            bad = _roundtrip(sock, {"op": "hello", "version": 99})
            assert not bad["ok"] and "version mismatch" in bad["error"]
            assert _roundtrip(sock, {"op": "ping"})["ok"]
            unknown = _roundtrip(sock, {"op": "frobnicate"})
            assert not unknown["ok"]
            assert unknown["error_type"] == "RemoteProtocolError"
            badkind = _roundtrip(sock, {"op": "task", "kind": "nope", "task": 0})
            assert not badkind["ok"]
            assert badkind["error_type"] == "RemoteProtocolError"
            stats = _roundtrip(sock, {"op": "stats"})
            assert stats["ok"] and stats["tasks_served"] == 0
            assert stats["bytes_received"] > 0
            assert _roundtrip(sock, {"op": "shutdown"})["ok"]
        finally:
            sock.close()


# --- executor basics --------------------------------------------------------------

def test_remote_executor_satisfies_protocols():
    executor = RemoteExecutor([])
    assert isinstance(executor, FragmentExecutor)
    assert isinstance(executor, PipelineFragmentExecutor)
    assert executor.n_workers == executor.nworkers == 1  # never degenerates


def test_remote_run_matches_local_kernels():
    tasks = [_make_task(f"f{i}") for i in range(3)]
    reference = [solve_fragment_task(t) for t in tasks]
    with _cluster(2) as (executor, _):
        assert executor.heartbeat() == 2
        report = executor.run(tasks)
        assert report.worker_count == 2
        assert executor.tasks_submitted == 3
        assert executor.pool_submissions == 3
        assert executor.workers_lost == 0 and executor.degraded_tasks == 0
        assert executor.bytes_sent > 0 and executor.bytes_received > 0
        _assert_results_equal(report.results, reference)


def test_shutdown_workers_then_degrade_to_local():
    tasks = [_make_task(f"s{i}") for i in range(2)]
    reference = [solve_fragment_task(t) for t in tasks]
    with _cluster(2) as (executor, _):
        assert executor.shutdown_workers() == 2
        report = executor.run(tasks)  # everything falls through to serial
        _assert_results_equal(report.results, reference)
        assert executor.workers_lost == 2
        assert executor.degraded_tasks == 2


def test_heartbeat_flags_dead_workers():
    with _cluster(2) as (executor, servers):
        assert executor.heartbeat() == 2
        servers[1].stop()
        for _ in range(3):  # the in-flight connection drains on first ping
            alive = executor.heartbeat()
        assert alive == 1
        assert executor.workers_lost == 1
        assert executor.n_workers == 1


# --- install channel --------------------------------------------------------------

def test_install_dedup_keeps_repeats_off_the_wire():
    rng = np.random.default_rng(11)
    v = rng.standard_normal((6, 5, 4))
    key = potential_fingerprint(v)
    try:
        with _cluster(2) as (executor, servers):
            executor.install_state(key, v)
            assert executor.install_broadcasts == 2  # once per worker
            sent = executor.bytes_sent
            executor.install_state(key, v)  # dedup: no frames at all
            assert executor.install_broadcasts == 2
            assert executor.bytes_sent == sent
            other = potential_fingerprint(v + 1.0)
            executor.install_state(other, v + 1.0)
            assert executor.install_broadcasts == 4
            assert executor.bytes_sent > sent
            assert sum(s.installs for s in servers) == 4
    finally:
        clear_installed_potentials()


def test_missed_install_heals_with_payload_then_reinstalls():
    """A worker that never saw the install answers with the typed miss;
    the driver resubmits once with the payload inline (bit-identical
    result), then installs the key properly so the heal happens once."""
    scf = _tiny_scf()
    v_in = scf.genpot.initial_potential()
    key = potential_fingerprint(v_in)
    keyed = scf.fragment_solver.make_pipeline_task(
        scf.fragments[0], v_in, eigensolver_tolerance=1e-4,
        eigensolver_iterations=40, global_potential_key=key)
    inline = scf.fragment_solver.make_pipeline_task(
        scf.fragments[0], v_in, eigensolver_tolerance=1e-4,
        eigensolver_iterations=40)
    reference = run_fragment_pipeline_task(inline)
    try:
        with _cluster(1) as (executor, _):
            executor.install_state(key, v_in)
            clear_installed_potentials()  # simulate worker amnesia
            report = executor.run_pipeline([keyed])
            np.testing.assert_array_equal(
                report.results[0].contribution, reference.contribution)
            assert executor.tasks_submitted == 1
            assert executor.pool_submissions == 2  # one heal retry
            # The post-heal explicit install restocked the worker store.
            assert executor.install_broadcasts == 2
            np.testing.assert_array_equal(fetch_potential(key), v_in)
    finally:
        clear_installed_potentials()


# --- SCF equivalence through every protocol ---------------------------------------

@pytest.fixture(scope="module")
def remote_scf_runs():
    """Serial reference + one remote run per protocol family.

    Module-scoped because the four tiny SCF runs dominate this file's
    cost; every run crosses real loopback TCP for every task.
    """
    reference = _tiny_scf(SerialFragmentExecutor(), pipeline=True).run(**_RUN_KW)
    runs = {"reference": (reference, None)}
    servers = [start_worker_thread() for _ in range(2)]
    try:
        cases = [
            ("pipeline", dict(pipeline=True)),
            ("genpot", dict(pipeline=True, genpot_shards=2)),
            ("bands", dict(band_groups=2)),
        ]
        for name, kw in cases:
            with RemoteExecutor(
                [s.address for s in servers], config=_config()
            ) as executor:
                scf = _tiny_scf(executor, **kw)
                result = scf.run(**_RUN_KW)
                runs[name] = (
                    result,
                    dict(
                        tasks=executor.tasks_submitted,
                        installs=executor.install_broadcasts,
                        sent=executor.bytes_sent,
                        received=executor.bytes_received,
                        lost=executor.workers_lost,
                        degraded=executor.degraded_tasks,
                        nfragments=scf.nfragments,
                    ),
                )
    finally:
        for server in servers:
            server.stop()
    return runs


def test_remote_scf_bit_identical_for_all_protocols(remote_scf_runs):
    """Acceptance criterion: remote == serial, bit for bit, for the
    fused pipeline, the sharded GENPOT slabs and the band-grouped path."""
    reference = remote_scf_runs["reference"][0]
    for name in ("pipeline", "genpot", "bands"):
        result, stats = remote_scf_runs[name]
        np.testing.assert_array_equal(
            result.density, reference.density, err_msg=name)
        np.testing.assert_array_equal(
            result.potential, reference.potential, err_msg=name)
        assert result.total_energy == reference.total_energy, name
        assert result.quantum_energy == reference.quantum_energy, name
        assert result.convergence_history == reference.convergence_history, name
        # Healthy cluster: nothing was lost or degraded along the way.
        assert stats["lost"] == 0 and stats["degraded"] == 0, name


def test_remote_scf_accounting(remote_scf_runs):
    result, stats = remote_scf_runs["pipeline"]
    # One submission per fragment per iteration, like every backend.
    assert stats["tasks"] == stats["nfragments"] * result.iterations
    # One install per worker per iteration potential (dedup holds).
    assert stats["installs"] == 2 * result.iterations
    assert stats["sent"] > 0 and stats["received"] > 0
    # Band-grouped: one submission per band-task batch, `slices` each.
    bands_result, bands_stats = remote_scf_runs["bands"]
    stages = sum(t.band_stages for t in bands_result.timings)
    assert bands_stats["tasks"] == stages * 2


# --- the failure model, scenario by scenario --------------------------------------

def test_dropped_connection_resubmits_bit_identically():
    """Worker 0 drops the connection mid-task; its task is resubmitted
    to the survivor and the batch result is unchanged."""
    tasks = [_make_task(f"d{i}") for i in range(4)]
    reference = [solve_fragment_task(t) for t in tasks]
    plans = {
        0: FaultPlan(drop_at=(0,)),
        1: FaultPlan(delay_at={0: 0.3}),  # keep the survivor busy so both
    }                                     # workers deterministically pop
    with _cluster(2, plans=plans) as (executor, servers):
        report = executor.run(tasks)
        _assert_results_equal(report.results, reference)
        assert executor.workers_lost == 1
        assert executor.resubmissions == 1
        assert executor.degraded_tasks == 0
        assert report.resubmissions == 1
        assert servers[0].tasks_served == 1  # faulted before the kernel ran


def test_killed_worker_resubmits_bit_identically():
    tasks = [_make_task(f"k{i}") for i in range(4)]
    reference = [solve_fragment_task(t) for t in tasks]
    plans = {0: FaultPlan(kill_at=(0,)), 1: FaultPlan(delay_at={0: 0.3})}
    with _cluster(2, plans=plans) as (executor, servers):
        report = executor.run(tasks)
        _assert_results_equal(report.results, reference)
        assert executor.workers_lost == 1
        assert executor.resubmissions == 1
        assert servers[0]._stop.is_set()  # the whole worker died


def test_delay_within_timeout_just_waits():
    tasks = [_make_task(f"w{i}") for i in range(3)]
    reference = [solve_fragment_task(t) for t in tasks]
    with _cluster(2, plans={0: FaultPlan(delay_at={0: 0.2})}) as (executor, _):
        report = executor.run(tasks)
        _assert_results_equal(report.results, reference)
        assert executor.workers_lost == 0
        assert executor.resubmissions == 0


def test_reply_past_timeout_marks_worker_dead():
    """A hung worker cannot hang the driver: the bounded request timeout
    converts it into a dead worker, and the task runs elsewhere."""
    tasks = [_make_task(f"t{i}") for i in range(2)]
    reference = [solve_fragment_task(t) for t in tasks]
    with _cluster(
        1, plans={0: FaultPlan(delay_at={0: 2.0})}, request_timeout=0.4
    ) as (executor, _):
        report = executor.run(tasks)
        _assert_results_equal(report.results, reference)
        assert executor.workers_lost == 1
        assert executor.resubmissions == 1
        assert executor.degraded_tasks == 2  # no survivors: local fallback


def test_all_workers_dead_degrades_to_serial():
    tasks = [_make_task(f"g{i}") for i in range(3)]
    reference = [solve_fragment_task(t) for t in tasks]
    with _cluster(1, plans={0: FaultPlan(kill_at=(0,))}) as (executor, _):
        report = executor.run(tasks)
        _assert_results_equal(report.results, reference)
        assert executor.workers_lost == 1
        assert executor.degraded_tasks == 3


def test_all_workers_dead_without_fallback_raises():
    tasks = [_make_task("n0")]
    with _cluster(1, plans={0: FaultPlan(kill_at=(0,))}, fallback=None) as (
        executor, _,
    ):
        with pytest.raises(NoRemoteWorkersError, match="fallback is disabled"):
            executor.run(tasks)
    # No addresses at all is the same typed error, with no hang.
    with pytest.raises(NoRemoteWorkersError):
        RemoteExecutor([], fallback=None).run(tasks)


def test_unreachable_address_falls_back():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_address = probe.getsockname()
    probe.close()  # nothing listens here any more
    tasks = [_make_task(f"u{i}") for i in range(2)]
    reference = [solve_fragment_task(t) for t in tasks]
    executor = RemoteExecutor(
        [dead_address], config=_config(max_retries=0, connect_timeout=1.0)
    )
    report = executor.run(tasks)
    _assert_results_equal(report.results, reference)
    assert executor.workers_lost == 1
    assert executor.degraded_tasks == 2


def test_kernel_error_is_typed_and_never_retried():
    """A deterministic kernel exception would fail on any worker, so it
    must surface as RemoteTaskError — no resubmission, worker stays up."""
    with _cluster(1) as (executor, _):
        with pytest.raises(RemoteTaskError, match="AttributeError"):
            executor.run([42])  # not a task: the kernel raises
        assert executor.resubmissions == 0
        assert executor.degraded_tasks == 0
        assert executor.heartbeat() == 1  # the worker survived the error


def test_remote_task_error_carries_worker_exception_type():
    with _cluster(1) as (executor, _):
        with pytest.raises(RemoteTaskError) as err:
            executor.run_pipeline([object()])
        assert err.value.error_type == "AttributeError"


# --- real subprocess workers (the CI remote-smoke job) ----------------------------

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
sys.path.insert(0, str(_GOLDEN_DIR))


@pytest.mark.remote
@pytest.mark.parametrize("name", ["zno_2x1x1", "gaas_1x1x2"])
def test_remote_subprocess_workers_match_golden_systems(name):
    """Two real ``repro-worker`` subprocesses run the golden-regression
    protocol through the remote backend: bit-identical to the in-process
    pipeline path, and anchored to the stored golden numbers."""
    from generate import PROTOCOL, SYSTEMS
    from repro.core.driver import LS3DF

    spec = SYSTEMS[name]
    structure = cscl_binary(
        spec["dims"], spec["cation"], spec["anion"], spec["lattice"])

    def build(executor=None):
        return LS3DF(
            structure,
            grid_dims=spec["dims"],
            ecut=PROTOCOL["ecut"],
            buffer_cells=PROTOCOL["buffer_cells"],
            n_empty=PROTOCOL["n_empty"],
            mixer=PROTOCOL["mixer"],
            executor=executor,
            pipeline=True,
        )

    serial = build().run(**PROTOCOL["run"])
    with LocalWorkerPool(2) as pool:
        with RemoteExecutor(pool.addresses, config=_config()) as executor:
            remote = build(executor).run(**PROTOCOL["run"])
            assert executor.workers_lost == 0
            assert executor.degraded_tasks == 0
            assert executor.install_broadcasts > 0
            assert executor.bytes_sent > 0
    np.testing.assert_array_equal(remote.density, serial.density)
    np.testing.assert_array_equal(remote.potential, serial.potential)
    assert remote.total_energy == serial.total_energy
    assert remote.convergence_history == serial.convergence_history
    golden = json.loads((_GOLDEN_DIR / f"{name}.json").read_text())
    assert remote.iterations == golden["iterations"]
    assert remote.total_energy == pytest.approx(
        golden["total_energy"], rel=1e-10, abs=1e-12)
    np.testing.assert_allclose(
        remote.convergence_history, golden["convergence_history"],
        rtol=1e-10, atol=1e-12)
