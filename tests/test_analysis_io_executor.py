"""Tests for the analysis helpers, I/O utilities and the fragment executor."""

import numpy as np
import pytest

from repro.analysis.states import (
    band_structure_summary,
    inverse_participation_ratio,
    localization_report,
    oxygen_band_analysis,
)
from repro.atoms.toy import cscl_binary
from repro.io.gridio import write_cube_like, write_grid_npz
from repro.io.results import ResultRecord, load_records, save_records
from repro.io.tables import format_table, table1_layout
from repro.parallel.executor import (
    FragmentTask,
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    solve_fragment_task,
)
from repro.pw.grid import FFTGrid


# --- analysis -------------------------------------------------------------------

def test_ipr_localised_vs_delocalised():
    grid = FFTGrid([10.0] * 3, (12, 12, 12))
    uniform = np.full(grid.shape, 1.0)
    localized = np.zeros(grid.shape)
    localized[0, 0, 0] = 1.0
    ipr_u = inverse_participation_ratio(uniform, grid.dvol)
    ipr_l = inverse_participation_ratio(localized, grid.dvol)
    assert ipr_l > 100 * ipr_u
    assert ipr_u == pytest.approx(1.0 / grid.volume)
    with pytest.raises(ValueError):
        inverse_participation_ratio(np.zeros(grid.shape), grid.dvol)


def test_band_structure_summary():
    ev = np.array([-1.0, -0.8, -0.5, 0.1, 0.3])
    summary = band_structure_summary(ev, nelectrons=6)
    assert summary.vbm == pytest.approx(-0.5)
    assert summary.cbm == pytest.approx(0.1)
    assert summary.gap_ev == pytest.approx(0.6 * 27.211386, rel=1e-4)
    with pytest.raises(ValueError):
        band_structure_summary(ev, nelectrons=20)


def test_localization_and_oxygen_band_analysis():
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (10, 10, 10))
    coords = grid.real_coordinates
    o_pos = structure.positions[1]
    zn_pos = structure.positions[0]

    def gaussian_at(center, width=1.2):
        d = coords - center[None, None, None, :]
        d -= np.asarray(grid.cell) * np.round(d / np.asarray(grid.cell))
        r2 = np.einsum("...i,...i->...", d, d)
        g = np.exp(-r2 / (2 * width**2))
        return g / (np.sum(g) * grid.dvol)

    states = np.array([gaussian_at(o_pos), gaussian_at(zn_pos)])
    energies = np.array([-0.2, -0.1])
    report = localization_report(energies, states, grid, structure)
    assert report.dominant_species[0] == "O"
    assert report.oxygen_weight[0] > report.oxygen_weight[1]

    analysis = oxygen_band_analysis(energies, states, grid, structure)
    assert analysis.oxygen_band_width_ev >= 0.0
    assert len(analysis.oxygen_state_energies_ev) >= 1


# --- io -------------------------------------------------------------------------

def test_result_records_roundtrip(tmp_path):
    records = [
        ResultRecord("table1", {"tflops": np.float64(31.35), "cores": np.int64(17280)}),
        ResultRecord("fig6", {"history": np.array([1.0, 0.1, 0.01])}),
    ]
    path = save_records(records, tmp_path / "out" / "results.json")
    loaded = load_records(path)
    assert loaded[0].experiment == "table1"
    assert loaded[0].data["cores"] == 17280
    assert loaded[1].data["history"][-1] == pytest.approx(0.01)


def test_format_table_and_layout():
    rows = [
        {"machine": "Franklin", "system": "8x6x9", "atoms": 3456, "cores": 17280,
         "Np": 40, "Tflop/s": 31.35, "% peak": 34.9},
    ]
    text = format_table(rows, columns=table1_layout())
    assert "Franklin" in text and "8x6x9" in text and "31.35" in text
    assert format_table([]) == "(empty table)"


def test_write_grid_outputs(tmp_path):
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (6, 6, 6))
    field = np.random.default_rng(0).random(grid.shape)
    cube = write_cube_like(tmp_path / "state.cube", field, grid, structure)
    assert cube.exists()
    header = cube.read_text().splitlines()
    assert int(header[2].split()[0]) == structure.natoms
    npz = write_grid_npz(tmp_path / "state.npz", grid, structure, density=field)
    data = np.load(npz, allow_pickle=False)
    assert np.allclose(data["density"], field)
    with pytest.raises(ValueError):
        write_grid_npz(tmp_path / "bad.npz", grid, None, density=np.zeros((2, 2, 2)))


# --- executor --------------------------------------------------------------------

def _make_task(label="frag") -> FragmentTask:
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (10, 10, 10))
    return FragmentTask(
        label=label,
        cell=tuple(structure.cell),
        grid_shape=grid.shape,
        symbols=structure.symbols,
        positions=structure.positions,
        screening_potential=np.zeros(grid.shape),
        ecut=2.0,
        n_empty=1,
        tolerance=1e-4,
        max_iterations=40,
    )


def test_solve_fragment_task_returns_sane_result():
    result = solve_fragment_task(_make_task())
    assert result.eigenvalues.ndim == 1
    assert result.density.shape == (10, 10, 10)
    assert result.wall_time > 0
    assert np.isfinite(result.quantum_energy)


def test_serial_executor_runs_all_tasks():
    tasks = [_make_task(f"f{i}") for i in range(2)]
    report = SerialFragmentExecutor().run(tasks)
    assert len(report.results) == 2
    assert report.worker_count == 1
    assert report.total_cpu_time > 0
    assert 0 < report.parallel_efficiency <= 1.5


def test_process_pool_executor_distributes_tasks():
    tasks = [_make_task(f"f{i}") for i in range(2)]
    report = ProcessPoolFragmentExecutor(nworkers=2).run(tasks)
    assert len(report.results) == 2
    assert {r.label for r in report.results} == {"f0", "f1"}
    assert report.distinct_workers >= 1
    with pytest.raises(ValueError):
        ProcessPoolFragmentExecutor(nworkers=0)
