"""Tests for the LDA functional, the Poisson solver and potential mixing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import FOUR_PI
from repro.pw.grid import FFTGrid
from repro.pw.hartree import hartree_energy, hartree_potential, poisson_residual
from repro.pw.mixing import AndersonMixer, KerkerMixer, LinearMixer, make_mixer
from repro.pw.xc import lda_correlation, lda_exchange, lda_xc, xc_energy


# --- LDA -------------------------------------------------------------------

def test_exchange_known_value():
    # eps_x(n) = -(3/4)(3/pi)^{1/3} n^{1/3}; check at n = 1.
    eps, v = lda_exchange(np.array([1.0]))
    expected = -0.75 * (3.0 / np.pi) ** (1.0 / 3.0)
    assert eps[0] == pytest.approx(expected)
    assert v[0] == pytest.approx(4.0 / 3.0 * expected)


def test_exchange_zero_density_is_zero():
    eps, v = lda_exchange(np.zeros(4))
    assert np.all(eps == 0) and np.all(v == 0)


def test_correlation_negative_and_continuous_at_rs_one():
    # PZ correlation energy is negative everywhere and continuous at rs=1.
    n_at_rs1 = 3.0 / (4.0 * np.pi)
    eps_lo, _ = lda_correlation(np.array([n_at_rs1 * 1.001]))
    eps_hi, _ = lda_correlation(np.array([n_at_rs1 * 0.999]))
    assert eps_lo[0] < 0 and eps_hi[0] < 0
    assert eps_lo[0] == pytest.approx(eps_hi[0], abs=5e-4)


def test_xc_potential_is_derivative_of_energy_density():
    # v_xc = d(n eps_xc)/dn, checked by finite differences.
    for n0 in [0.01, 0.1, 1.0]:
        eps = 1e-6 * n0
        e_plus = (n0 + eps) * lda_xc(np.array([n0 + eps]))[0][0]
        e_minus = (n0 - eps) * lda_xc(np.array([n0 - eps]))[0][0]
        numeric = (e_plus - e_minus) / (2 * eps)
        _, v = lda_xc(np.array([n0]))
        assert v[0] == pytest.approx(numeric, rel=1e-4)


def test_xc_energy_negative_for_positive_density():
    grid = FFTGrid([5.0] * 3, (6, 6, 6))
    rho = np.full(grid.shape, 0.02)
    assert xc_energy(rho, grid.dvol) < 0


@settings(max_examples=25, deadline=None)
@given(n=st.floats(min_value=1e-6, max_value=10.0))
def test_property_xc_scaling_monotonic(n):
    """Exchange becomes more negative with density; potential below energy."""
    eps, v = lda_exchange(np.array([n]))
    assert eps[0] < 0
    assert v[0] < eps[0]  # v_x = 4/3 eps_x < eps_x < 0


# --- Poisson / Hartree -------------------------------------------------------

def test_hartree_potential_of_cosine_density():
    # rho = cos(G.r) => V = 4 pi cos(G.r) / G^2 exactly.
    grid = FFTGrid([10.0, 10.0, 10.0], (16, 16, 16))
    g = 2.0 * np.pi / 10.0
    x = grid.real_coordinates[..., 0]
    rho = np.cos(g * x)
    v = hartree_potential(rho, grid)
    expected = FOUR_PI * np.cos(g * x) / g**2
    assert np.allclose(v, expected, atol=1e-10)


def test_poisson_residual_is_zero_for_solver_output():
    grid = FFTGrid([8.0, 9.0, 10.0], (12, 12, 12))
    rng = np.random.default_rng(2)
    rho = np.abs(rng.standard_normal(grid.shape))
    v = hartree_potential(rho, grid)
    assert poisson_residual(v, rho, grid) < 1e-8


def test_hartree_energy_positive_and_scales_quadratically():
    grid = FFTGrid([8.0] * 3, (12, 12, 12))
    rng = np.random.default_rng(4)
    rho = np.abs(rng.standard_normal(grid.shape))
    e1 = hartree_energy(rho, grid)
    e2 = hartree_energy(2.0 * rho, grid)
    assert e1 > 0
    assert e2 == pytest.approx(4.0 * e1, rel=1e-10)


def test_hartree_shape_validation():
    grid = FFTGrid([8.0] * 3, (12, 12, 12))
    with pytest.raises(ValueError):
        hartree_potential(np.zeros((4, 4, 4)), grid)


# --- Mixing ------------------------------------------------------------------

def test_linear_mixer_interpolates():
    m = LinearMixer(alpha=0.25)
    v_in = np.zeros((4, 4, 4))
    v_out = np.ones((4, 4, 4))
    assert np.allclose(m.mix(v_in, v_out), 0.25)


def test_linear_mixer_validation():
    with pytest.raises(ValueError):
        LinearMixer(alpha=0.0)
    with pytest.raises(ValueError):
        LinearMixer(alpha=1.5)


def test_kerker_mixer_damps_long_wavelengths_more():
    grid = FFTGrid([20.0] * 3, (16, 16, 16))
    m = KerkerMixer(grid, alpha=1.0, q0=1.0)
    x = grid.real_coordinates[..., 0]
    long_wave = np.cos(2 * np.pi * x / 20.0)
    short_wave = np.cos(2 * np.pi * 6 * x / 20.0)
    v_in = np.zeros(grid.shape)
    upd_long = m.mix(v_in, long_wave) / np.maximum(np.abs(long_wave), 1e-12)
    upd_short = m.mix(v_in, short_wave) / np.maximum(np.abs(short_wave), 1e-12)
    assert np.median(np.abs(upd_long)) < np.median(np.abs(upd_short))


def test_anderson_mixer_converges_linear_fixed_point():
    """Anderson mixing must converge a simple contractive fixed-point map."""
    rng = np.random.default_rng(0)
    target = rng.standard_normal((6, 6, 6))

    def output_of(v):
        # A linear map with spectral radius < 1 around the fixed point.
        return target + 0.6 * (v - target)

    mixer = AndersonMixer(alpha=0.5, history=4)
    v = np.zeros_like(target)
    for _ in range(30):
        v = mixer.mix(v, output_of(v))
    assert np.max(np.abs(v - target)) < 1e-6


def test_anderson_faster_than_linear():
    rng = np.random.default_rng(1)
    target = rng.standard_normal((5, 5, 5))

    def output_of(v):
        return target + 0.8 * (v - target)

    def run(mixer, n):
        v = np.zeros_like(target)
        for _ in range(n):
            v = mixer.mix(v, output_of(v))
        return np.max(np.abs(v - target))

    err_linear = run(LinearMixer(alpha=0.5), 15)
    err_anderson = run(AndersonMixer(alpha=0.5, history=5), 15)
    assert err_anderson < err_linear


def test_make_mixer_factory():
    grid = FFTGrid([8.0] * 3, (8, 8, 8))
    assert isinstance(make_mixer("linear"), LinearMixer)
    assert isinstance(make_mixer("kerker", grid=grid), KerkerMixer)
    assert isinstance(make_mixer("anderson"), AndersonMixer)
    with pytest.raises(ValueError):
        make_mixer("kerker")
    with pytest.raises(ValueError):
        make_mixer("unknown")


def test_anderson_reset_clears_history():
    mixer = AndersonMixer(alpha=0.5, history=3)
    a = np.zeros((3, 3, 3))
    b = np.ones((3, 3, 3))
    mixer.mix(a, b)
    mixer.reset()
    # After reset the first mix is plain linear again.
    assert np.allclose(mixer.mix(a, b), 0.5)
