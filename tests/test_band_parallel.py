"""Tests for the band-parallel distributed eigensolver (ISSUE-5).

Covers the tentpole acceptance criteria: grouped ``all_band_cg`` runs are
**bit-identical** (``==``) to the single-worker path for slice counts
{1, 2, 3, nbands} on the serial, thread and process backends; every
sliced stage is exactly one executor submission per slice; the grouped
SCF path (``band_groups=``) reproduces the fused-pipeline results bit
for bit; and the mid-iteration partial checkpoints let a run killed in
the middle of PEtot_F replay only its unfinished fragments, with
bit-identical final iterates.

Nothing here asserts a measured parallel speedup — the CI container may
have a single core (``os.cpu_count() == 1``); only correctness and
accounting are gated.
"""

import pickle

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.fragment_task import (
    FragmentPipelineResult,
    FragmentTask,
    run_fragment_pipeline_task,
    run_fragment_pipeline_task_grouped,
    solve_fragment_task,
    solve_fragment_task_grouped,
)
from repro.core.scf import LS3DFSCF
from repro.io.checkpoint import (
    CheckpointMismatchError,
    clear_partial_payloads,
    load_partial_payloads,
    save_partial_payload,
)
from repro.parallel.amdahl import (
    intra_group_efficiency_history,
    measured_intra_group_efficiency,
)
from repro.parallel.bands import (
    BandBlockTask,
    BandGroup,
    BandGroupExecutor,
    BandSlice,
    band_slices,
    run_band_block_task,
)
from repro.parallel.executor import (
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
)
from repro.parallel.scheduler import FragmentScheduler
from repro.pw.eigensolver import all_band_cg
from repro.pw.grid import FFTGrid


def _make_task(label="frag", screening=0.02) -> FragmentTask:
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (10, 10, 10))
    return FragmentTask(
        label=label,
        cell=tuple(structure.cell),
        grid_shape=grid.shape,
        symbols=structure.symbols,
        positions=structure.positions,
        screening_potential=np.full(grid.shape, screening),
        ecut=2.0,
        n_empty=1,
        tolerance=1e-5,
        max_iterations=40,
    )


def _tiny_scf(executor=None, **kw) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        **kw,
    )


_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-6,  # never met in 3 iterations: fixed work
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


# --- slices -----------------------------------------------------------------------

def test_band_slices_partition():
    slices = band_slices(10, 4)
    assert [(s.lo, s.hi) for s in slices] == [(0, 3), (3, 6), (6, 8), (8, 10)]
    assert [s.nbands for s in slices] == [3, 3, 2, 2]
    assert all(s.nslices == 4 for s in slices)
    # More slices than bands: trailing slices are empty, still covering.
    slices = band_slices(2, 4)
    assert [(s.lo, s.hi) for s in slices] == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_band_slice_validation():
    with pytest.raises(ValueError):
        BandSlice(index=3, nslices=3, lo=0, hi=1)
    with pytest.raises(ValueError):
        BandSlice(index=0, nslices=1, lo=2, hi=1)


# --- per-slice kernel -------------------------------------------------------------

def test_band_block_task_pickle_roundtrip():
    task = _make_task()
    block = np.zeros((2, 5), dtype=complex)
    btask = BandBlockTask(
        kind="apply_local",
        bands=band_slices(4, 2)[0],
        template=task,
        block=block,
    )
    clone = pickle.loads(pickle.dumps(btask))
    assert clone.kind == "apply_local"
    assert clone.label == btask.label == f"{task.label}:apply_local[0/2]"
    assert clone.bands == btask.bands
    assert np.array_equal(clone.block, block)
    assert clone.template.static_fingerprint() == task.static_fingerprint()
    assert clone.cost() == btask.cost() == float(block.size)


def test_run_band_block_task_rejects_unknown_kind():
    task = _make_task()
    btask = BandBlockTask(
        kind="nonsense",
        bands=band_slices(1, 1)[0],
        template=task,
        block=np.zeros((1, 5), dtype=complex),
    )
    with pytest.raises(ValueError, match="unknown band task kind"):
        run_band_block_task(btask)


def test_grouped_apply_bit_identical_to_hamiltonian_apply():
    """BandGroup.apply_h == Hamiltonian.apply bit for bit, any slice count.

    The load-bearing decomposition: slices carry the row-independent
    kinetic + local (FFT) share, the root adds the nonlocal term on the
    full block with unchanged BLAS shapes.
    """
    from repro.core.fragment_task import get_task_problem

    task = _make_task()
    problem = get_task_problem(task)
    h = problem.hamiltonian
    h.set_effective_potential(np.asarray(task.screening_potential))
    nbands = problem.nbands + 3
    x = h.basis.random_coefficients(nbands, np.random.default_rng(7))
    ref = h.apply(x)
    executor = SerialFragmentExecutor()
    for nslices in (1, 2, 3, nbands):
        group = BandGroup(executor, nslices, task, problem=problem)
        np.testing.assert_array_equal(group.apply_h(x), ref)
        assert group.stats.stages == 1
        assert group.stats.submissions == nslices


def test_grouped_residual_precond_bit_identical():
    from repro.core.fragment_task import get_task_problem

    task = _make_task()
    problem = get_task_problem(task)
    h = problem.hamiltonian
    h.set_effective_potential(np.asarray(task.screening_potential))
    nbands = problem.nbands
    rng = np.random.default_rng(11)
    x = h.basis.random_coefficients(nbands, rng)
    hx = h.apply(x)
    evals = np.sort(rng.standard_normal(nbands))
    precond = h.preconditioner()
    r = hx - evals[:, None] * x
    w_ref = r * precond[None, :]
    rnorm_ref = np.linalg.norm(r, axis=1)
    executor = SerialFragmentExecutor()
    for nslices in (1, 2, 3, nbands):
        group = BandGroup(executor, nslices, task, problem=problem)
        w, rnorm = group.residual_precond(x, hx, evals)
        np.testing.assert_array_equal(w, w_ref)
        np.testing.assert_array_equal(rnorm, rnorm_ref)


def test_band_group_requires_capable_executor():
    class RunOnly:
        n_workers = 1

    with pytest.raises(TypeError, match="run_bands"):
        BandGroup(RunOnly(), 2, _make_task())
    for executor in (
        SerialFragmentExecutor(),
        ThreadPoolFragmentExecutor(n_workers=1),
        ProcessPoolFragmentExecutor(n_workers=1),
    ):
        assert isinstance(executor, BandGroupExecutor)
    assert not isinstance(RunOnly(), BandGroupExecutor)


# --- grouped eigensolver / solve kernel (acceptance criterion) --------------------

@pytest.fixture(scope="module")
def solve_reference():
    """Single-worker kernel result on the reference fragment."""
    return solve_fragment_task(_make_task())


def test_grouped_all_band_cg_bit_identical_serial(solve_reference):
    """all_band_cg(band_groups=...) == all_band_cg() for {1,2,3,nbands}."""
    from repro.core.fragment_task import get_task_problem

    task = _make_task()
    problem = get_task_problem(task)
    h = problem.hamiltonian
    h.set_effective_potential(np.asarray(task.screening_potential))
    ref = all_band_cg(
        h, problem.nbands, max_iterations=task.max_iterations,
        tolerance=task.tolerance)
    executor = SerialFragmentExecutor()
    for nslices in (1, 2, 3, problem.nbands):
        group = BandGroup(executor, nslices, task, problem=problem)
        got = all_band_cg(
            h, problem.nbands, max_iterations=task.max_iterations,
            tolerance=task.tolerance, band_groups=group)
        np.testing.assert_array_equal(got.eigenvalues, ref.eigenvalues)
        np.testing.assert_array_equal(got.coefficients, ref.coefficients)
        np.testing.assert_array_equal(got.residual_norms, ref.residual_norms)
        assert got.iterations == ref.iterations
        assert got.converged == ref.converged
        assert got.history == ref.history


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
def test_grouped_solve_bit_identical_all_backends(backend, solve_reference):
    """The grouped fragment solve == the ungrouped kernel, bit for bit,
    for slice counts {1, 2, 3, nbands} on every backend."""
    ref = solve_reference
    nbands = len(ref.eigenvalues)
    executors = {
        "serial": SerialFragmentExecutor,
        "threads": lambda: ThreadPoolFragmentExecutor(n_workers=2),
        "processes": lambda: ProcessPoolFragmentExecutor(n_workers=2),
    }
    with executors[backend]() as executor:
        for nslices in (1, 2, 3, nbands):
            result, stats = solve_fragment_task_grouped(
                _make_task(), executor, nslices)
            np.testing.assert_array_equal(result.eigenvalues, ref.eigenvalues)
            np.testing.assert_array_equal(result.density, ref.density)
            np.testing.assert_array_equal(result.coefficients, ref.coefficients)
            assert result.quantum_energy == ref.quantum_energy
            assert result.band_energy == ref.band_energy
            assert result.solver_iterations == ref.solver_iterations
            assert result.converged == ref.converged
            assert stats.nslices == nslices


def test_one_submission_per_slice_per_stage():
    """Accounting acceptance criterion: every sliced stage is exactly one
    executor submission per band slice, and the executor's own counter
    agrees with the group's."""
    for nslices in (1, 2, 3):
        executor = SerialFragmentExecutor()
        _result, stats = solve_fragment_task_grouped(
            _make_task(), executor, nslices)
        assert stats.submissions == stats.stages * nslices
        assert executor.tasks_submitted == stats.submissions
        assert len(stats.task_times) == stats.submissions
        assert stats.task_cpu > 0
        assert stats.stages > 0


def test_grouped_solve_rejects_band_by_band():
    task = _make_task()
    task.eigensolver = "band_by_band"
    with pytest.raises(ValueError, match="all-band"):
        solve_fragment_task_grouped(task, SerialFragmentExecutor(), 2)


def test_fragment_solver_grouped_convenience_matches_plain():
    """FragmentSolver.solve_fragment_grouped == solve_fragment, bitwise,
    including the per-fragment warm-start bookkeeping both maintain."""
    from repro.core.patching import restrict_to_fragment

    scf_a, scf_b = _tiny_scf(), _tiny_scf()
    fragment = scf_a.fragments[0]
    v_in = scf_a.genpot.initial_potential()
    restricted_a = restrict_to_fragment(scf_a.division, fragment, v_in)
    ref = scf_a.fragment_solver.solve_fragment(
        fragment, restricted_a,
        eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    got = scf_b.fragment_solver.solve_fragment_grouped(
        scf_b.fragments[0], restricted_a, SerialFragmentExecutor(), 2,
        eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    np.testing.assert_array_equal(got.eigenvalues, ref.eigenvalues)
    np.testing.assert_array_equal(got.density, ref.density)
    assert got.quantum_energy == ref.quantum_energy
    # Both entry points store the converged wavefunctions for warm starts.
    problem = scf_b.fragment_solver.build_problem(scf_b.fragments[0])
    assert problem.wavefunctions is not None


def test_grouped_pipeline_kernel_matches_ungrouped():
    scf = _tiny_scf()
    v_in = scf.genpot.initial_potential()
    make = lambda: scf.fragment_solver.make_pipeline_task(  # noqa: E731
        scf.fragments[0], v_in,
        eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    ref = run_fragment_pipeline_task(make())
    got, stats = run_fragment_pipeline_task_grouped(
        make(), SerialFragmentExecutor(), 2)
    np.testing.assert_array_equal(got.result.density, ref.result.density)
    np.testing.assert_array_equal(got.contribution, ref.contribution)
    assert got.result.quantum_energy == ref.result.quantum_energy
    assert stats.submissions == stats.stages * 2


# --- grouped SCF (end to end) -----------------------------------------------------

@pytest.fixture(scope="module")
def pipeline_run():
    """The fused-pipeline reference the grouped path must reproduce."""
    return _tiny_scf(SerialFragmentExecutor(), pipeline=True).run(**_RUN_KW)


def _assert_scf_identical(result, reference):
    np.testing.assert_array_equal(result.density, reference.density)
    np.testing.assert_array_equal(result.potential, reference.potential)
    assert result.total_energy == reference.total_energy
    assert result.quantum_energy == reference.quantum_energy
    assert result.convergence_history == reference.convergence_history
    assert result.energy_history == reference.energy_history


def test_scf_band_groups_bit_identical_serial(pipeline_run):
    for nslices in (1, 2, 3):
        result = _tiny_scf(
            SerialFragmentExecutor(), band_groups=nslices).run(**_RUN_KW)
        _assert_scf_identical(result, pipeline_run)


def test_scf_band_groups_bit_identical_pools(pipeline_run):
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        threaded = _tiny_scf(executor, band_groups=2).run(**_RUN_KW)
    _assert_scf_identical(threaded, pipeline_run)
    with ProcessPoolFragmentExecutor(n_workers=2) as executor:
        pooled = _tiny_scf(executor, band_groups=2).run(**_RUN_KW)
    _assert_scf_identical(pooled, pipeline_run)


def test_scf_band_groups_timings_and_accounting(pipeline_run):
    executor = SerialFragmentExecutor()
    scf = _tiny_scf(executor, band_groups=2)
    result = scf.run(**_RUN_KW)
    assert executor.tasks_submitted == sum(
        t.band_stages for t in result.timings) * 2
    for t in result.timings:
        assert t.band_sliced and t.pipeline
        assert t.band_slices == 2
        assert len(t.band_tasks) == t.band_stages * 2
        assert len(t.petot_f_fragments) == scf.nfragments
        assert t.band_cpu > 0
        assert t.band_driver >= 0
        assert 0 < t.measured_intra_group_efficiency <= 1.0
        # Amdahl buckets: band tasks are the parallel work, the root
        # residue is serial.
        assert t.parallel_cpu == pytest.approx(t.band_cpu + 0.0)
        assert t.serial_time == pytest.approx(
            t.gen_vf + t.gen_dens + t.genpot + t.band_driver + t.checkpoint_io)
        # The grouped schedule rides along with the modelled efficiency.
        assert t.band_schedule is not None
        assert t.band_schedule.cores_per_group == 2
        assert 0 < t.band_schedule.intra_group_efficiency <= 1.0
    # Measured-efficiency history helper consumes these timings directly.
    effs = intra_group_efficiency_history(result.timings)
    assert len(effs) == len(result.timings)
    assert all(e == t.measured_intra_group_efficiency
               for e, t in zip(effs, result.timings))


def test_scf_band_groups_validation():
    with pytest.raises(ValueError, match="band_groups"):
        _tiny_scf(SerialFragmentExecutor(), band_groups=0)
    with pytest.raises(ValueError, match="all-band"):
        _tiny_scf(SerialFragmentExecutor(), band_groups=2,
                  eigensolver="band_by_band")

    class RunOnly:
        n_workers = 1

        def run(self, tasks):  # pragma: no cover - never called
            raise AssertionError

    with pytest.raises(TypeError, match="run_bands"):
        _tiny_scf(RunOnly(), band_groups=2)


def test_ls3df_driver_accepts_band_groups():
    from repro.core import LS3DF

    ls3df = LS3DF(
        cscl_binary((2, 1, 1), "Zn", "O", 6.0), grid_dims=(2, 1, 1),
        ecut=2.2, executor=SerialFragmentExecutor(), band_groups=2)
    assert ls3df.band_groups == 2
    result = ls3df.run(max_iterations=1, potential_tolerance=1e-9,
                       eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    assert result.iterations == 1
    assert result.timings[0].band_sliced


# --- scheduler / amdahl wiring ----------------------------------------------------

def test_schedule_grouped_annotates_summary():
    tasks = [_make_task(f"f{i}") for i in range(6)]
    summary = FragmentScheduler().schedule_grouped(
        tasks, total_cores=4, cores_per_group=2)
    assert summary.cores_per_group == 2
    assert 0 < summary.intra_group_efficiency <= 1.0
    assert len(summary.assignments) == 2  # 4 cores / Np=2 -> 2 group bins
    assigned = sorted(i for group in summary.assignments for i in group)
    assert assigned == list(range(len(tasks)))
    # Automatic Np via choose_group_size: falls back to a divisor of the
    # core count, and still annotates the summary.
    auto = FragmentScheduler().schedule_grouped(tasks, total_cores=40)
    assert auto.cores_per_group >= 1
    assert auto.intra_group_efficiency is not None
    # Plain schedules carry no group annotation.
    plain = FragmentScheduler().schedule_tasks(tasks, 2)
    assert plain.cores_per_group is None
    assert plain.intra_group_efficiency is None


def test_measured_intra_group_efficiency_helper():
    assert measured_intra_group_efficiency(2.0, 1.0, 4) == pytest.approx(0.5)
    assert measured_intra_group_efficiency(0.0, 1.0, 4) == 0.0
    assert measured_intra_group_efficiency(1.0, 0.0, 4) == 0.0
    with pytest.raises(ValueError):
        measured_intra_group_efficiency(-1.0, 1.0, 4)


# --- mid-iteration partial checkpoints --------------------------------------------

def test_pipeline_result_state_dict_roundtrip():
    scf = _tiny_scf()
    v_in = scf.genpot.initial_potential()
    pres = run_fragment_pipeline_task(
        scf.fragment_solver.make_pipeline_task(
            scf.fragments[0], v_in,
            eigensolver_tolerance=1e-4, eigensolver_iterations=40))
    clone = FragmentPipelineResult.from_state_dict(pres.state_dict())
    assert clone.label == pres.label
    np.testing.assert_array_equal(clone.result.density, pres.result.density)
    np.testing.assert_array_equal(clone.contribution, pres.contribution)
    np.testing.assert_array_equal(
        clone.result.coefficients, pres.result.coefficients)
    assert clone.result.quantum_energy == pres.result.quantum_energy
    assert clone.result.converged == pres.result.converged
    assert clone.wall_time == pres.wall_time


def test_partial_payload_save_load_clear(tmp_path):
    arrays_a = {"label": np.asarray("F(0,0,0)x111"), "x": np.arange(4.0)}
    arrays_b = {"label": np.asarray("F(1,0,0)x211"), "x": np.arange(3.0)}
    save_partial_payload(tmp_path, 3, "sig", "F(0,0,0)x111", arrays_a)
    save_partial_payload(tmp_path, 3, "sig", "F(1,0,0)x211", arrays_b)
    loaded = load_partial_payloads(tmp_path, 3, "sig")
    assert sorted(loaded) == ["F(0,0,0)x111", "F(1,0,0)x211"]
    np.testing.assert_array_equal(loaded["F(0,0,0)x111"]["x"], np.arange(4.0))
    # A different iteration sees nothing (stale partials are not replayed).
    assert load_partial_payloads(tmp_path, 4, "sig") == {}
    # A different problem is a loud error, like the full checkpoint.
    with pytest.raises(CheckpointMismatchError):
        load_partial_payloads(tmp_path, 3, "other-sig")
    # Iterations live in separate subdirectories: saving for iteration 4
    # must NOT disturb iteration 3's payloads (a resumed run replaying
    # iteration 3 would otherwise destroy the only record of iteration
    # 4's completed fragments).
    save_partial_payload(tmp_path, 4, "sig", "F(0,0,0)x111", arrays_a)
    assert sorted(load_partial_payloads(tmp_path, 4, "sig")) == ["F(0,0,0)x111"]
    assert len(load_partial_payloads(tmp_path, 3, "sig")) == 2
    # up_to_iteration clears older partials, keeps newer ones.
    clear_partial_payloads(tmp_path, up_to_iteration=3)
    assert load_partial_payloads(tmp_path, 3, "sig") == {}
    assert load_partial_payloads(tmp_path, 4, "sig") != {}
    clear_partial_payloads(tmp_path)
    assert load_partial_payloads(tmp_path, 4, "sig") == {}


def test_partial_payload_state_fingerprint_gates_replay(tmp_path):
    """Partials saved under different solve inputs (a changed tolerance,
    a different input potential) are stale — ignored, not replayed and
    not an error — and a save under new inputs wipes them."""
    arrays = {"label": np.asarray("F(0,0,0)x111"), "x": np.arange(4.0)}
    save_partial_payload(
        tmp_path, 1, "sig", "F(0,0,0)x111", arrays, state_fingerprint="inputs-A")
    assert load_partial_payloads(
        tmp_path, 1, "sig", state_fingerprint="inputs-A") != {}
    assert load_partial_payloads(
        tmp_path, 1, "sig", state_fingerprint="inputs-B") == {}
    # Saving under the new inputs replaces the stale same-iteration set.
    save_partial_payload(
        tmp_path, 1, "sig", "F(0,0,0)x111", arrays, state_fingerprint="inputs-B")
    assert load_partial_payloads(
        tmp_path, 1, "sig", state_fingerprint="inputs-A") == {}
    assert load_partial_payloads(
        tmp_path, 1, "sig", state_fingerprint="inputs-B") != {}


def _state_fingerprint(scf, tolerance=1e-4, iterations=40):
    """The solve-input digest the grouped path salts its partials with
    (duplicated here so a drift in the production formula is caught)."""
    import hashlib

    fp = hashlib.sha256()
    fp.update(np.ascontiguousarray(scf.genpot.initial_potential()).tobytes())
    fp.update(np.float64(tolerance).tobytes())
    fp.update(np.int64(iterations).tobytes())
    return fp.hexdigest()


class _KillAfterBatches(SerialFragmentExecutor):
    """Serial backend that dies after a fixed number of band-task batches."""

    def __init__(self, nbatches):
        super().__init__()
        self.left = nbatches

    def run_bands(self, tasks):
        if self.left <= 0:
            raise RuntimeError("simulated mid-PEtot_F kill")
        self.left -= 1
        return super().run_bands(tasks)


def test_mid_iteration_checkpoint_replays_only_unfinished(tmp_path):
    """A run killed mid-PEtot_F resumes bit-identically, replaying the
    already-completed fragments from disk instead of re-solving them."""
    run_kw = dict(max_iterations=2, potential_tolerance=1e-9,
                  eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    reference = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(**run_kw)

    killer = _KillAfterBatches(90)  # enough stages to finish >= 1 fragment
    scf = _tiny_scf(killer, band_groups=2)
    with pytest.raises(RuntimeError, match="simulated"):
        scf.run(checkpoint_dir=tmp_path, resume=True, **run_kw)
    saved = load_partial_payloads(
        tmp_path, 1, scf._problem_signature(),
        state_fingerprint=_state_fingerprint(scf))
    assert 0 < len(saved) < scf.nfragments  # some done, some not

    resumed = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(
        checkpoint_dir=tmp_path, resume=True, **run_kw)
    _assert_scf_identical(resumed, reference)
    # The first resumed iteration replayed exactly the persisted fragments.
    assert resumed.timings[0].band_replayed == len(saved)
    assert resumed.timings[1].band_replayed == 0
    # The end-of-iteration checkpoints superseded the partials.
    assert load_partial_payloads(
        tmp_path, 1, scf._problem_signature(),
        state_fingerprint=_state_fingerprint(scf)) == {}


def test_resume_with_changed_inputs_does_not_splice_stale_partials(tmp_path):
    """Regression: partials are pinned to the iteration's solve inputs.
    Resuming with a changed eigensolver setting must re-solve everything
    (replaying fragments solved under the old setting would silently mix
    two inconsistent calculations into one iteration)."""
    kill_kw = dict(max_iterations=1, potential_tolerance=1e-9,
                   eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    killer = _KillAfterBatches(90)
    scf = _tiny_scf(killer, band_groups=2)
    with pytest.raises(RuntimeError, match="simulated"):
        scf.run(checkpoint_dir=tmp_path, resume=True, **kill_kw)

    changed_kw = dict(kill_kw, eigensolver_iterations=25)  # changed input
    resumed = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(
        checkpoint_dir=tmp_path, resume=True, **changed_kw)
    assert resumed.timings[0].band_replayed == 0
    honest = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(**changed_kw)
    _assert_scf_identical(resumed, honest)


def test_fresh_run_never_replays_stale_partials(tmp_path):
    """Regression: a resume=False run into a directory holding a killed
    run's partials must wipe them and solve everything itself — replaying
    another run's results without being asked would silently mix state."""
    run_kw = dict(max_iterations=1, potential_tolerance=1e-9,
                  eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    killer = _KillAfterBatches(90)
    scf = _tiny_scf(killer, band_groups=2)
    with pytest.raises(RuntimeError, match="simulated"):
        scf.run(checkpoint_dir=tmp_path, resume=True, **run_kw)
    assert load_partial_payloads(
        tmp_path, 1, scf._problem_signature(),
        state_fingerprint=_state_fingerprint(scf))

    fresh = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(
        checkpoint_dir=tmp_path, resume=False, **run_kw)
    assert fresh.timings[0].band_replayed == 0
    reference = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(**run_kw)
    _assert_scf_identical(fresh, reference)


def test_converged_run_clears_its_partials(tmp_path):
    """Regression: a run that converges breaks out before the checkpoint
    block; its final iteration's partials must not outlive the run."""
    result = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(
        max_iterations=30, potential_tolerance=1e9,  # converges immediately
        eigensolver_tolerance=1e-4, eigensolver_iterations=40,
        checkpoint_dir=tmp_path)
    assert result.converged
    scf = _tiny_scf()
    assert load_partial_payloads(
        tmp_path, result.iterations, scf._problem_signature()) == {}


def test_grouped_checkpoint_resume_matches_uninterrupted(tmp_path):
    """Ordinary iteration-boundary resume also stays bit-identical on the
    grouped path (partials cleared by each full checkpoint)."""
    run_kw = dict(potential_tolerance=1e-9,
                  eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    reference = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(
        max_iterations=3, **run_kw)
    _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(
        max_iterations=2, checkpoint_dir=tmp_path, **run_kw)
    resumed = _tiny_scf(SerialFragmentExecutor(), band_groups=2).run(
        max_iterations=3, checkpoint_dir=tmp_path, resume=True, **run_kw)
    _assert_scf_identical(resumed, reference)
