#!/usr/bin/env python
"""Profile one LS3DF SCF iteration, one stage at a time.

Runs the paper's four subroutines — Gen_VF, PEtot_F, Gen_dens, GENPOT —
on a model-scale problem, each under its own ``cProfile`` session, and
prints the top-20 functions by cumulative time per stage.  This is the
measurement behind the "Hot paths and where the time goes" section of
``docs/ARCHITECTURE.md``: PEtot_F dominates, and inside it the batched
per-band FFTs (``Hamiltonian.apply_local``) and the nonlocal projection
GEMMs (``Hamiltonian.add_nonlocal``) are nearly the whole bill.

Usage::

    PYTHONPATH=src python tools/profile_hot_paths.py [--cells X Y Z]
                                                     [--ecut E] [--top N]

Everything runs on the serial backend so the profile sees the kernels
themselves, not pool plumbing.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def profile_stage(name: str, func, top: int):
    profiler = cProfile.Profile()
    profiler.enable()
    out = func()
    profiler.disable()
    stats = pstats.Stats(profiler)
    print(f"\n{'=' * 72}\n{name}: top {top} by cumulative time\n{'=' * 72}")
    stats.sort_stats("cumulative").print_stats(top)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--cells", nargs=3, type=int, default=(2, 2, 1), metavar=("X", "Y", "Z"),
        help="supercell / fragment-grid dimensions (default: 2 2 1)",
    )
    parser.add_argument("--ecut", type=float, default=2.2,
                        help="plane-wave cutoff in Hartree (default: 2.2)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows to print per stage (default: 20)")
    args = parser.parse_args()

    from repro.atoms.toy import cscl_binary
    from repro.core.fragment_task import solve_fragment_task
    from repro.core.patching import patch_fragment_fields, restrict_to_fragment
    from repro.core.scf import LS3DFSCF

    cells = tuple(args.cells)
    structure = cscl_binary(cells, "Zn", "O", 6.0)
    scf = LS3DFSCF(
        structure,
        grid_dims=cells,
        ecut=args.ecut,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
    )
    print(
        f"problem: {len(structure.symbols)} atoms, {scf.nfragments} fragments, "
        f"global grid {scf.division.global_grid.shape}, ecut {args.ecut} Ha"
    )
    v_in = scf.genpot.initial_potential()

    # Gen_VF: restrict the global potential to every fragment box and
    # build the picklable solve tasks (what the driver does per iteration).
    def gen_vf():
        tasks = []
        for fragment in scf.fragments:
            restricted = restrict_to_fragment(scf.division, fragment, v_in)
            tasks.append(
                scf.fragment_solver.make_task(
                    fragment, restricted,
                    eigensolver_tolerance=1e-4, eigensolver_iterations=40,
                )
            )
        return tasks

    tasks = profile_stage("Gen_VF", gen_vf, args.top)

    # PEtot_F: the per-fragment Kohn-Sham solves (the dominant stage).
    def petot_f():
        return [solve_fragment_task(t) for t in tasks]

    results = profile_stage("PEtot_F", petot_f, args.top)

    # Gen_dens: patch the weighted fragment densities into the global one.
    def gen_dens():
        return patch_fragment_fields(
            scf.division, scf.fragments, [r.density for r in results]
        )

    density = profile_stage("Gen_dens", gen_dens, args.top)

    # GENPOT: global Poisson + XC + mixing.
    def genpot():
        return scf.genpot.evaluate(density, v_in)

    out = profile_stage("GENPOT", genpot, args.top)
    print(
        "\nconvergence metric after one iteration: "
        f"{out.potential_difference:.6e}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
