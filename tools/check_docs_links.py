#!/usr/bin/env python
"""Verify that relative markdown links in the repo's docs resolve.

Scans the given markdown files (default: README.md and docs/*.md) for
inline links ``[text](target)`` and checks that every non-URL target
exists on disk relative to the file containing the link.  Anchors
(``#section``) are stripped; ``http(s)://`` and ``mailto:`` targets are
skipped.  Exits non-zero listing every broken link — the CI docs job
runs this so the README and architecture docs cannot reference files
that moved or were deleted.

Usage:  python tools/check_docs_links.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown links; [text](target "title") tolerated via the split.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def iter_links(markdown: str) -> list[str]:
    """All inline link targets in a markdown document.

    Parameters
    ----------
    markdown:
        The document text.

    Returns
    -------
    list[str]
        Link targets in order of appearance (URLs included; filtering is
        the caller's job).
    """
    return _LINK.findall(markdown)


def broken_links(paths: list[Path]) -> list[str]:
    """Relative links that do not resolve to an existing file.

    Parameters
    ----------
    paths:
        Markdown files to scan.

    Returns
    -------
    list[str]
        Human-readable ``"<file>: <target>"`` entries, empty when all
        links resolve.
    """
    problems = []
    for path in paths:
        for target in iter_links(path.read_text()):
            if target.startswith(_SKIP_PREFIXES):
                continue
            location = target.split("#", 1)[0]
            if not location:  # pure in-page anchor
                continue
            if not (path.parent / location).exists():
                problems.append(f"{path}: {target}")
    return problems


def default_paths(root: Path) -> list[Path]:
    """README plus everything under docs/ (the linked documentation set)."""
    return [root / "README.md", *sorted((root / "docs").glob("*.md"))]


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = [Path(a) for a in argv] if argv else default_paths(root)
    missing = [p for p in paths if not p.is_file()]
    if missing:
        print("missing markdown files:", *missing, sep="\n  ")
        return 1
    problems = broken_links(paths)
    if problems:
        print("broken links:", *problems, sep="\n  ")
        return 1
    print(f"checked {len(paths)} files, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
