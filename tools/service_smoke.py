#!/usr/bin/env python
"""Boot a repro-serve daemon and prove the service contract end to end.

The CI ``service-smoke`` job's driver (and a runnable demo): starts a
real ``repro-serve`` subprocess over a throwaway store root, submits
two *identical* jobs plus one distinct job through
:class:`repro.store.client.ServiceClient`, and asserts

* the identical pair deduplicates — one run id, ``attached`` on the
  second submit, a dedup counter (``solves``) of exactly 1;
* the distinct job gets its own run;
* both runs stream their convergence events (``submitted -> scheduled
  -> iteration -> checkpointed -> ... -> converged``) and finish with a
  retrievable result.

With ``--kill-and-restart`` it additionally enacts the crash demo from
the README: SIGKILLs the daemon after the long job's first checkpoint,
restarts it over the same root, and checks the auto-resumed run
finishes bit-identical (``==``) to an uninterrupted reference solve.

Usage:  python tools/service_smoke.py [--kill-and-restart] [--root DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.store import build_solver  # noqa: E402
from repro.store.client import ServiceClient  # noqa: E402

SPEC_A = {
    "builder": "cscl_binary",
    "builder_args": {"dims": [1, 1, 1], "cation": "Zn", "anion": "O",
                     "lattice_constant": 6.0},
    "solver": {"grid_dims": [1, 1, 1], "ecut": 2.0, "n_empty": 1,
               "mixer": "linear"},
    "run": {"max_iterations": 4, "potential_tolerance": 12.0,
            "eigensolver_tolerance": 1e-4, "eigensolver_iterations": 40},
}

# The same problem under a different iteration budget is a different
# trajectory, hence a different signature: the "distinct" third job.
SPEC_B = json.loads(json.dumps(SPEC_A))
SPEC_B["run"]["max_iterations"] = 3

# Long enough (~1 s/iteration) for the kill demo to land mid-solve.
SPEC_LONG = {
    "builder": "cscl_binary",
    "builder_args": {"dims": [2, 1, 1], "cation": "Zn", "anion": "O",
                     "lattice_constant": 6.0},
    "solver": {"grid_dims": [2, 1, 1], "ecut": 2.2, "buffer_cells": 0.5,
               "n_empty": 2, "mixer": "kerker"},
    "run": {"max_iterations": 3, "potential_tolerance": 1e-9,
            "eigensolver_tolerance": 1e-4, "eigensolver_iterations": 40},
}

_SERVE_STUB = (
    "import sys; from repro.store.server import serve_main; "
    "sys.exit(serve_main(sys.argv[1:]))"
)


def boot_daemon(root: Path) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start one repro-serve subprocess; returns (process, address)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVE_STUB, "--root", str(root)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("REPRO-SERVE LISTENING"):
        proc.kill()
        raise SystemExit(f"daemon failed to start: {line!r}\n{proc.stderr.read()}")
    _, _, host, port = line.split()
    print(f"[smoke] daemon pid {proc.pid} listening on {host}:{port}")
    return proc, (host, int(port))


def check(condition: bool, message: str) -> None:
    """Assert with a smoke-log line (SystemExit keeps CI output clean)."""
    if not condition:
        raise SystemExit(f"[smoke] FAILED: {message}")
    print(f"[smoke] ok: {message}")


def dedup_and_convergence(address: tuple[str, int]) -> None:
    """Two identical submits + one distinct: dedup and event streaming."""
    with ServiceClient(address, client="alice") as alice, \
            ServiceClient(address, client="bob") as bob:
        first = alice.submit(SPEC_A)
        second = bob.submit(SPEC_A)  # identical: must attach, not resolve
        third = bob.submit(SPEC_B)  # distinct: its own run
        check(first["run_id"] == second["run_id"],
              "identical submissions share one run id")
        check(not first["attached"] and second["attached"],
              "second identical submission attached instead of resubmitting")
        check(third["run_id"] != first["run_id"],
              "distinct problem got its own run")

        shared = alice.wait(first["run_id"], timeout=120)
        other = alice.wait(third["run_id"], timeout=120)
        check(shared["status"] == "converged" and other["status"] == "converged",
              "both runs reached a terminal converged event")
        check(shared["solves"] == 1,
              f"dedup counter is 1 (one solve for two clients), "
              f"got {shared['solves']}")
        check(shared["clients"] == 2, "both clients recorded on the shared run")

        kinds = [e["kind"] for e in alice.events(first["run_id"])]
        for needed in ("submitted", "scheduled", "iteration", "checkpointed",
                       "converged"):
            check(needed in kinds, f"shared run streamed a {needed!r} event")
        check(kinds.count("scheduled") == 1, "exactly one solve was scheduled")

        result = alice.result(first["run_id"])
        check(result is not None and result["density"].ndim == 3,
              "result arrays retrievable over the wire")


def kill_and_restart(root: Path) -> None:
    """SIGKILL mid-solve, restart, assert bit-identical completion."""
    daemon, address = boot_daemon(root)
    with ServiceClient(address, client="alice") as client:
        run_id = client.submit(SPEC_LONG)["run_id"]
        deadline = time.monotonic() + 120.0
        while client.status(run_id)["checkpointed_iteration"] < 1:
            if time.monotonic() >= deadline:
                raise SystemExit("[smoke] FAILED: no checkpoint before kill")
            time.sleep(0.05)
    daemon.kill()
    daemon.wait(timeout=30)
    print(f"[smoke] SIGKILLed daemon pid {daemon.pid} mid-solve")

    daemon2, address2 = boot_daemon(root)
    with ServiceClient(address2, client="alice") as client:
        final = client.wait(run_id, timeout=240)
        events = client.events(run_id)
        result = client.result(run_id)
        client.shutdown()
    daemon2.wait(timeout=30)
    check(final["status"] == "converged", "restarted daemon finished the run")
    check(any(e["kind"] == "scheduled" and e["data"]["resumed"]
              for e in events), "restart rescheduled with resumed: True")
    solver, run_kwargs = build_solver(SPEC_LONG)
    reference = solver.run(**run_kwargs)
    check(np.array_equal(result["density"], reference.density),
          "resumed final density is bit-identical to an uninterrupted run")
    check(result["energy"] == reference.total_energy,
          "resumed final energy equals the uninterrupted run's exactly")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", help="store root (default: a temp dir)")
    parser.add_argument("--kill-and-restart", action="store_true",
                        help="also run the SIGKILL + auto-resume demo")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(args.root) if args.root else Path(tmp) / "store"
        daemon, address = boot_daemon(root)
        try:
            dedup_and_convergence(address)
            with ServiceClient(address) as client:
                client.shutdown()
            daemon.wait(timeout=30)
        finally:
            daemon.kill()
        if args.kill_and_restart:
            kill_and_restart(root)
    print("[smoke] service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
