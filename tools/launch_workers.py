#!/usr/bin/env python
"""Launch N localhost repro-workers and print their addresses.

The multi-machine quickstart (README, "Running on multiple machines")
starts one ``repro-worker`` per host by hand; this helper is the
single-machine convenience for demos, benchmarks and the CI
``remote-smoke`` job: it spawns ``--n`` worker subprocesses on this
host, prints one ``host port`` line per worker, and keeps them alive
until Ctrl-C (or ``--duration`` elapses).

Usage::

    PYTHONPATH=src python tools/launch_workers.py --n 2
    # in another shell / script:
    #   RemoteExecutor([(host1, port1), (host2, port2)])
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.parallel.remote import LocalWorkerPool  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2, help="workers to launch")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds to keep the workers alive (default: until Ctrl-C)",
    )
    args = parser.parse_args(argv)
    with LocalWorkerPool(args.n) as pool:
        for host, port in pool.addresses:
            print(f"{host} {port}", flush=True)
        try:
            if args.duration is None:
                while True:
                    time.sleep(3600)
            else:
                time.sleep(args.duration)
        except KeyboardInterrupt:
            pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
