"""CdSe quantum-rod-style workload: dipole moments from LS3DF densities.

The paper's Section IV optimisation benchmark is a 2,000-atom CdSe quantum
rod, and its earlier validation work compares LS3DF dipole moments of
thousand-atom quantum rods against direct LDA (<1% deviation).  This
example runs the same analysis at model scale on an elongated CdSe-like
supercell: the LS3DF density is compared to the direct-DFT density through
the electronic dipole moment.

Usage:  python examples/quantum_dot_rod.py
"""

from __future__ import annotations

import numpy as np

from repro.atoms import cscl_binary
from repro.core import LS3DF
from repro.core.compare import dipole_moment
from repro.pw import DirectSCF


def main() -> None:
    # An elongated ("rod-like") Cd-Se toy cell: 3 cells along x.
    structure = cscl_binary((3, 1, 1), "Cd", "Se", 6.8)
    print(f"Rod-like system: {structure.formula()} ({structure.natoms} atoms)")

    ls3df = LS3DF(structure, grid_dims=(3, 1, 1), ecut=2.2, buffer_cells=0.5, n_empty=2)
    ls_result = ls3df.run(max_iterations=10, potential_tolerance=3e-3,
                          eigensolver_tolerance=1e-4, verbose=True)

    direct = DirectSCF(structure, ecut=2.2, grid=ls3df.global_grid, n_empty=3)
    d_result = direct.run(max_scf_iterations=25, potential_tolerance=3e-3,
                          eigensolver_tolerance=1e-4)

    dip_ls = dipole_moment(ls_result.density, ls3df.global_grid)
    dip_d = dipole_moment(d_result.density, ls3df.global_grid)
    print("\nElectronic dipole moments (a.u.):")
    print(f"  LS3DF : {np.round(dip_ls, 4)}")
    print(f"  direct: {np.round(dip_d, 4)}")
    denom = max(np.linalg.norm(dip_d), 1e-6)
    print(f"  relative deviation: {np.linalg.norm(dip_ls - dip_d) / denom * 100:.1f}% "
          f"(paper: <1% at production settings)")
    print(f"\nTotal energies: LS3DF {ls_result.total_energy:.4f} Ha, "
          f"direct {d_result.total_energy:.4f} Ha")


if __name__ == "__main__":
    main()
