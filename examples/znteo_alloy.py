"""ZnTe(1-x)O(x)-style alloy workflow: the paper's science application.

Reproduces the paper's Section V-VII pipeline at model scale:

1. build a zinc-blende ZnTe supercell and substitute ~3% of the Te sites
   by oxygen (random, reproducible seed);
2. relax the alloy geometry with the Keating valence force field (the paper
   relaxes its alloys with VFF rather than DFT forces);
3. run LS3DF on the relaxed structure;
4. extract band-edge states with the folded spectrum method and analyse
   the oxygen-induced gap states (localisation, band width).

NOTE: with the pure-Python plane-wave substrate a zinc-blende supercell is
substantially more expensive than the toy systems; the default below uses a
2x1x1 supercell (16 atoms) so the example completes in tens of minutes.
Pass ``--dims 2 2 2`` (or larger) for a more faithful, slower run.

Usage:  python examples/znteo_alloy.py [--dims M1 M2 M3] [--ecut E]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import localization_report
from repro.atoms import build_znteo_alloy, relax_structure
from repro.core import LS3DF
from repro.io import write_grid_npz


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dims", type=int, nargs=3, default=[2, 1, 1],
                        help="supercell size in 8-atom cells")
    parser.add_argument("--ecut", type=float, default=2.5,
                        help="plane-wave cutoff (Hartree)")
    parser.add_argument("--oxygen", type=float, default=0.10,
                        help="O fraction on the Te sublattice (paper: 0.03)")
    parser.add_argument("--iterations", type=int, default=12)
    args = parser.parse_args()

    # 1. Alloy supercell (the fraction is higher than the paper's 3% so a
    #    small supercell still contains at least one O atom).
    alloy = build_znteo_alloy(args.dims, oxygen_fraction=args.oxygen, rng=0)
    print(f"Alloy: {alloy.formula()}  ({alloy.natoms} atoms)")

    # 2. VFF relaxation (Zn-O bonds are shorter than Zn-Te -> local distortion).
    relaxed, info = relax_structure(alloy)
    print(f"VFF relaxation: E {info['initial_energy']:.4f} -> {info['final_energy']:.4f} "
          f"(model units), max force {info['max_force']:.2e}, {info['nsteps']} steps")

    # 3. LS3DF on the relaxed structure; the fragment grid is the cell grid.
    ls3df = LS3DF(relaxed, grid_dims=tuple(args.dims), ecut=args.ecut,
                  buffer_cells=0.5, n_empty=3)
    print(f"{ls3df.nfragments} fragments, global grid {ls3df.global_grid.shape}")
    result = ls3df.run(max_iterations=args.iterations, potential_tolerance=2e-3,
                       eigensolver_tolerance=1e-4, verbose=True)
    print(f"LS3DF energy {result.total_energy:.4f} Ha, "
          f"|Vout-Vin| history: {[round(v, 2) for v in result.convergence_history]}")

    # 4. Band-edge states + oxygen localisation analysis (paper Fig. 7).
    states = ls3df.band_edge_states(result, n_states=4)
    densities = states.densities_on_grid()
    report = localization_report(states.energies, densities, ls3df.global_grid, relaxed)
    print("\nBand-edge states (folded spectrum method):")
    for e, ipr, species, ow in zip(report.energies_ev, report.ipr,
                                   report.dominant_species, report.oxygen_weight):
        print(f"  E = {e:8.3f} eV   IPR = {ipr:.4f}   dominant atom = {species:9s} "
              f"  O weight = {ow:.2f}")

    # Export the most oxygen-like state for visualisation (npz grid data).
    o_state = int(np.argmax(report.oxygen_weight))
    path = write_grid_npz("band_edge_state.npz", ls3df.global_grid, relaxed,
                          state_density=densities[o_state])
    print(f"\nWrote |psi|^2 of the most O-localised state to {path}")


if __name__ == "__main__":
    main()
