"""Parallel scaling study: the paper's performance evaluation end to end.

Part A reproduces the modelled evaluation (Table I, Figures 3-5) for any of
the three machines; Part B runs a *real* laptop-scale strong-scaling
measurement: a full LS3DF self-consistent calculation is repeated with the
serial, thread-pool and process-pool fragment-execution backends — with
and without the fused Gen_VF->solve->Gen_dens fragment pipeline — and the
*measured* PEtot_F speedup (from the per-fragment wall times the SCF loop
records) is printed next to the speedup the LPT load-balancing model
predicts for the same fragment batch, together with the measured Amdahl
serial fraction of a warm iteration.  Part C exercises the two-level
hierarchy: the band-parallel eigensolver (``band_groups=``, the paper's
Np cores per fragment group) at a few slice counts, printing the
*modelled* intra-group efficiency the grouped LPT schedule carries
(``choose_group_size`` / ``GroupDecomposition``) next to the *measured*
one from the recorded band-task times.

Usage:  python examples/scaling_study.py [--machine franklin|jaguar|intrepid]
                                         [--workers N]
"""

from __future__ import annotations

import argparse

from repro.atoms import cscl_binary
from repro.core import LS3DFSCF
from repro.io import format_table
from repro.parallel import (
    DirectDFTCostModel,
    FragmentScheduler,
    LS3DFPerformanceModel,
    LS3DFWorkload,
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
    machine_by_name,
)
from repro.parallel.comm import CommScheme


def modelled_evaluation(machine_name: str) -> None:
    machine = machine_by_name(machine_name)
    scheme = CommScheme.POINT_TO_POINT if machine.name == "Intrepid" else CommScheme.COLLECTIVE
    grid, ecut = (32, 40) if machine.name == "Intrepid" else (40, 50)
    print(f"\n=== Modelled LS3DF performance on {machine.name} ===")
    rows = []
    runs = [((4, 4, 4), 2560, 20), ((8, 6, 9), 8640, 40), ((8, 6, 9), 17280, 40)]
    if machine.name == "Intrepid":
        runs = [((4, 4, 4), 4096, 64), ((8, 8, 8), 32768, 64), ((16, 16, 8), 131072, 64)]
    for dims, cores, npg in runs:
        wl = LS3DFWorkload(dims, grid_per_cell=grid, ecut_ry=ecut)
        point = LS3DFPerformanceModel(machine, wl, scheme).evaluate(cores, npg)
        rows.append(point.as_row())
    print(format_table(rows))
    direct = DirectDFTCostModel()
    wl = LS3DFWorkload((12, 12, 12))
    model = LS3DFPerformanceModel(machine_by_name("franklin"), wl, CommScheme.COLLECTIVE)
    print(f"LS3DF vs O(N^3) speedup at 13,824 atoms: "
          f"{direct.speedup_of_ls3df(model, 17280, 10):.0f}x  "
          f"(crossover ~{direct.crossover_atoms(machine_by_name('franklin'), 320, 20):.0f} atoms)")


def real_strong_scaling(max_workers: int) -> None:
    print("\n=== Real LS3DF strong scaling (pluggable fragment backends) ===")
    structure = cscl_binary((2, 2, 1), "Zn", "Se", 6.5)

    def run_with(executor, pipeline=False):
        scf = LS3DFSCF(
            structure,
            grid_dims=(2, 2, 1),
            ecut=2.2,
            buffer_cells=0.5,
            n_empty=2,
            mixer="kerker",
            executor=executor,
            pipeline=pipeline,
        )
        result = scf.run(
            max_iterations=3,
            potential_tolerance=1e-6,  # fixed work: never converges early
            eigensolver_tolerance=1e-4,
            eigensolver_iterations=40,
        )
        return scf, result

    backends = [("serial", 1, False, SerialFragmentExecutor()),
                ("serial+pipeline", 1, True, SerialFragmentExecutor())]
    for workers in sorted({2, max_workers} if max_workers > 1 else set()):
        backends.append((f"threads x{workers}", workers, False,
                         ThreadPoolFragmentExecutor(n_workers=workers)))
        backends.append((f"processes x{workers}", workers, False,
                         ProcessPoolFragmentExecutor(n_workers=workers)))
        backends.append((f"processes x{workers}+pipeline", workers, True,
                         ProcessPoolFragmentExecutor(n_workers=workers)))

    scheduler = FragmentScheduler()
    rows = []
    baseline_wall = None
    for name, workers, pipeline, executor in backends:
        scf, result = run_with(executor, pipeline)
        if hasattr(executor, "close"):
            executor.close()
        petot_wall = sum(t.petot_f for t in result.timings)
        petot_cpu = sum(t.petot_f_cpu for t in result.timings)
        # Measured Amdahl alpha of the last (warm) iteration: driver-side
        # serial time vs. summed per-fragment time.  The fused pipeline
        # moves the Gen_VF/Gen_dens loops out of the serial part.
        alpha = result.timings[-1].measured_serial_fraction
        if baseline_wall is None:
            baseline_wall = petot_wall
        # Modelled speedup: perfect LPT load balancing of this fragment
        # batch over the workers (sum of costs / heaviest group).
        schedule = scheduler.schedule(scf.fragments, workers)
        rows.append({
            "backend": name,
            "PEtot_F wall [s]": round(petot_wall, 2),
            "measured speedup": round(baseline_wall / petot_wall, 2),
            "modeled speedup (LPT)": round(schedule.lpt_speedup, 2),
            "in-step speedup": round(petot_cpu / petot_wall, 2),
            "imbalance": round(schedule.imbalance, 2),
            # The paper quotes alpha as 1/N (e.g. 1/101,000).
            "serial fraction": f"1/{1.0 / alpha:,.0f}" if alpha > 0 else "0",
        })
    print(f"{scf.nfragments} fragments, 3 SCF iterations per backend")
    print(format_table(rows))
    print("(measured = serial PEtot_F wall / backend PEtot_F wall;"
          " modeled = LPT-balanced ideal for the same fragment costs;"
          " serial fraction = measured Amdahl alpha of the last iteration)")


def band_group_study(max_workers: int) -> None:
    """Part C: the two-level hierarchy, modelled vs measured.

    Runs the same small LS3DF system with the band-parallel eigensolver
    at a few slice counts and prints, per configuration, the largest
    fragment's grouped wall time next to two intra-group efficiencies:
    the modelled one (``ScheduleSummary.intra_group_efficiency``, fed by
    ``choose_group_size``/``GroupDecomposition``) and the measured one
    (``IterationTimings.measured_intra_group_efficiency``, from the
    recorded per-slice band-task times).
    """
    print("\n=== Band-parallel eigensolver (two-level hierarchy) ===")
    structure = cscl_binary((2, 2, 1), "Zn", "Se", 6.5)
    rows = []
    configs: list[tuple[str, object, int | None]] = [
        ("serial (no groups)", SerialFragmentExecutor, None)
    ]
    for nslices in sorted({2, max(2, min(max_workers, 4))}):
        configs.append((f"threads, band_groups={nslices}",
                        lambda: ThreadPoolFragmentExecutor(
                            n_workers=max(2, max_workers)),
                        nslices))
    for name, make_executor, band_groups in configs:
        executor = make_executor()
        scf = LS3DFSCF(
            structure,
            grid_dims=(2, 2, 1),
            ecut=2.2,
            buffer_cells=0.5,
            n_empty=2,
            mixer="kerker",
            executor=executor,
            pipeline=band_groups is None,
            band_groups=band_groups,
        )
        result = scf.run(
            max_iterations=2,
            potential_tolerance=1e-6,
            eigensolver_tolerance=1e-4,
            eigensolver_iterations=40,
        )
        if hasattr(executor, "close"):
            executor.close()
        warm = result.timings[-1]  # warm iteration: the representative one
        largest = max(warm.petot_f_fragments)
        if band_groups is None:
            modeled = measured = "-"
        else:
            modeled = f"{warm.band_schedule.intra_group_efficiency:.2f}"
            measured = f"{warm.measured_intra_group_efficiency:.2f}"
        rows.append({
            "configuration": name,
            "largest-fragment wall [s]": round(largest, 3),
            "PEtot_F wall [s]": round(warm.petot_f, 2),
            "modeled intra-group eff": modeled,
            "measured intra-group eff": measured,
        })
    print(format_table(rows))
    print("(modeled = GroupDecomposition.intra_group_efficiency of the grouped"
          " LPT schedule; measured = band-task CPU / (Np x PEtot_F wall) of a"
          " warm iteration — 1-core boxes keep the measured value below the"
          " model, the gap is the group root's cross-band algebra)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="franklin",
                        choices=["franklin", "jaguar", "intrepid"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--skip-real", action="store_true",
                        help="only run the modelled evaluation")
    args = parser.parse_args()
    modelled_evaluation(args.machine)
    if not args.skip_real:
        real_strong_scaling(args.workers)
        band_group_study(args.workers)


if __name__ == "__main__":
    main()
