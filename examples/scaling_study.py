"""Parallel scaling study: the paper's performance evaluation end to end.

Part A reproduces the modelled evaluation (Table I, Figures 3-5) for any of
the three machines; Part B runs a *real* laptop-scale strong-scaling
measurement by distributing actual fragment solves over worker processes
with the process-pool executor.

Usage:  python examples/scaling_study.py [--machine franklin|jaguar|intrepid]
                                         [--workers N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.atoms import cscl_binary
from repro.core.division import SpatialDivision
from repro.core.fragments import enumerate_fragments
from repro.core.passivation import passivate_fragment
from repro.io import format_table
from repro.parallel import (
    DirectDFTCostModel,
    FragmentScheduler,
    LS3DFPerformanceModel,
    LS3DFWorkload,
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    machine_by_name,
)
from repro.parallel.comm import CommScheme
from repro.parallel.executor import FragmentTask
from repro.pw.grid import FFTGrid


def modelled_evaluation(machine_name: str) -> None:
    machine = machine_by_name(machine_name)
    scheme = CommScheme.POINT_TO_POINT if machine.name == "Intrepid" else CommScheme.COLLECTIVE
    grid, ecut = (32, 40) if machine.name == "Intrepid" else (40, 50)
    print(f"\n=== Modelled LS3DF performance on {machine.name} ===")
    rows = []
    runs = [((4, 4, 4), 2560, 20), ((8, 6, 9), 8640, 40), ((8, 6, 9), 17280, 40)]
    if machine.name == "Intrepid":
        runs = [((4, 4, 4), 4096, 64), ((8, 8, 8), 32768, 64), ((16, 16, 8), 131072, 64)]
    for dims, cores, npg in runs:
        wl = LS3DFWorkload(dims, grid_per_cell=grid, ecut_ry=ecut)
        point = LS3DFPerformanceModel(machine, wl, scheme).evaluate(cores, npg)
        rows.append(point.as_row())
    print(format_table(rows))
    direct = DirectDFTCostModel()
    wl = LS3DFWorkload((12, 12, 12))
    model = LS3DFPerformanceModel(machine_by_name("franklin"), wl, CommScheme.COLLECTIVE)
    print(f"LS3DF vs O(N^3) speedup at 13,824 atoms: "
          f"{direct.speedup_of_ls3df(model, 17280, 10):.0f}x  "
          f"(crossover ~{direct.crossover_atoms(machine_by_name('franklin'), 320, 20):.0f} atoms)")


def real_strong_scaling(max_workers: int) -> None:
    print("\n=== Real fragment-solve strong scaling (process pool) ===")
    structure = cscl_binary((2, 2, 1), "Zn", "Se", 6.5)
    dims = (2, 2, 1)
    grid = FFTGrid(structure.cell, (20, 20, 10))
    division = SpatialDivision(structure, dims, grid, 0.5)
    fragments = enumerate_fragments(dims)
    tasks = []
    for frag in fragments:
        passv = passivate_fragment(division, frag)
        fgrid = division.fragment_grid(frag)
        tasks.append(FragmentTask(
            label=frag.label,
            cell=tuple(fgrid.cell),
            grid_shape=fgrid.shape,
            symbols=passv.structure.symbols,
            positions=passv.structure.positions,
            screening_potential=np.zeros(fgrid.shape),
            ecut=2.2,
            n_empty=2,
            tolerance=1e-4,
            max_iterations=40,
        ))
    print(f"{len(tasks)} fragment solves")
    rows = []
    baseline = None
    for workers in [1, 2, max_workers]:
        executor = SerialFragmentExecutor() if workers == 1 else ProcessPoolFragmentExecutor(workers)
        report = executor.run(tasks)
        baseline = baseline or report.wall_time
        rows.append({
            "workers": workers,
            "wall time [s]": round(report.wall_time, 1),
            "speedup": round(baseline / report.wall_time, 2),
            "parallel efficiency": round(report.parallel_efficiency, 2),
        })
    print(format_table(rows))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="franklin",
                        choices=["franklin", "jaguar", "intrepid"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--skip-real", action="store_true",
                        help="only run the modelled evaluation")
    args = parser.parse_args()
    modelled_evaluation(args.machine)
    if not args.skip_real:
        real_strong_scaling(args.workers)


if __name__ == "__main__":
    main()
