"""Quickstart: solve a small periodic system with LS3DF and compare to direct DFT.

This is the smallest end-to-end use of the public API:

1. build a toy periodic crystal (2 atoms per cubic cell);
2. run the LS3DF divide-and-conquer self-consistent loop;
3. run the conventional (O(N^3)) plane-wave SCF on the same system;
4. compare total energies, band gaps and densities.

Run time: a few minutes on a laptop.

Usage:  python examples/quickstart.py

Checkpoint/restart (the paper's production runs restart from saved SCF
state after preemption) is demonstrated by the ``--checkpoint-dir`` and
``--resume`` flags: run with a checkpoint directory, kill the process
mid-SCF (Ctrl-C), then rerun the same command with ``--resume`` — the
loop continues at the saved iteration and the remaining iterates are
bit-identical to an uninterrupted run:

    python examples/quickstart.py --checkpoint-dir /tmp/ls3df-ckpt
    # ... kill it after a few "LS3DF   n:" lines ...
    python examples/quickstart.py --checkpoint-dir /tmp/ls3df-ckpt --resume
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.atoms import cscl_binary
from repro.constants import HARTREE_TO_EV
from repro.core import LS3DF
from repro.io import has_checkpoint, read_manifest
from repro.pw import DirectSCF


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="save SCF checkpoints to DIR after every iteration",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint in --checkpoint-dir (fresh run if none)",
    )
    parser.add_argument(
        "--max-iterations", type=int, default=12,
        help="LS3DF outer iteration cap (default 12)",
    )
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    # 1. A small Zn-Se toy crystal: 2x1x1 cubic cells, 4 atoms, 16 electrons.
    structure = cscl_binary((2, 1, 1), "Zn", "Se", lattice_constant=6.5)
    print(f"System: {structure.formula()}  ({structure.natoms} atoms, "
          f"{structure.total_valence_electrons()} electrons)")

    # 2. LS3DF: fragment grid = the cell grid (2 x 1 x 1), four fragments.
    ls3df = LS3DF(structure, grid_dims=(2, 1, 1), ecut=2.4, buffer_cells=0.5, n_empty=3)
    print(f"LS3DF fragments: {ls3df.nfragments}, global grid {ls3df.global_grid.shape}")
    if args.resume and has_checkpoint(args.checkpoint_dir):
        saved_iteration = int(read_manifest(args.checkpoint_dir)["iteration"])
        if saved_iteration >= args.max_iterations:
            parser.exit(
                message=f"Checkpoint in {args.checkpoint_dir} already covers "
                f"iteration {saved_iteration}; the SCF finished.  Rerun with a "
                f"higher --max-iterations to continue it, or delete the "
                f"directory to start over.\n"
            )
        print(f"Resuming from {args.checkpoint_dir} at iteration {saved_iteration + 1}")
    ls_result = ls3df.run(max_iterations=args.max_iterations, potential_tolerance=2e-3,
                          eigensolver_tolerance=1e-5, verbose=True,
                          checkpoint_dir=args.checkpoint_dir, resume=args.resume)
    print(f"LS3DF total energy:  {ls_result.total_energy:.6f} Ha "
          f"(converged={ls_result.converged}, {ls_result.iterations} iterations)")

    # 3. Direct DFT reference on the same grid.
    direct = DirectSCF(structure, ecut=2.4, grid=ls3df.global_grid, n_empty=4)
    d_result = direct.run(max_scf_iterations=30, potential_tolerance=2e-3,
                          eigensolver_tolerance=1e-5)
    print(f"Direct total energy: {d_result.total_energy:.6f} Ha "
          f"(converged={d_result.converged}, {d_result.iterations} iterations)")

    # 4. Compare.
    nelec = structure.total_valence_electrons()
    de = (ls_result.total_energy - d_result.total_energy) / structure.natoms
    drho = np.sum(np.abs(ls_result.density - d_result.density)) * ls3df.global_grid.dvol
    print(f"\nEnergy difference:   {de * 1000:.2f} mHa/atom")
    print(f"Density L1 error:    {drho:.3f} electrons (of {nelec})")
    print(f"Direct band gap:     {d_result.band_gap(nelec) * HARTREE_TO_EV:.2f} eV")

    # Band-edge states from the converged LS3DF potential (folded spectrum).
    states = ls3df.band_edge_states(ls_result, n_states=2)
    print("Band-edge states from LS3DF potential (FSM):",
          np.round(states.energies * HARTREE_TO_EV, 3), "eV")


if __name__ == "__main__":
    main()
